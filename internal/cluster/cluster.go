// Package cluster implements the resource-sharing substrate that Apache
// Mesos provides in the paper: a set of physical/virtual nodes divided into
// "slices" (resource offers) with configurable CPU/memory reservations.
//
// The ElasticRMI runtime asks the Manager for slices when instantiating or
// growing an elastic object pool and relinquishes them on scale-down, exactly
// as §2.4/§2.5 of the paper describe. Provisioning latency — the time between
// requesting a slice and the slice being able to serve — is a configurable
// function, which lets the benchmark harness model both the Linux-container
// regime the paper measures for ElasticRMI (seconds) and the VM-provisioning
// regime of CloudWatch/AutoScaling (minutes).
//
// The Manager also emits administrator notifications when cluster
// utilization crosses configurable thresholds (§4.2).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// Exported errors.
var (
	// ErrNoCapacity is returned by Acquire when no slice is free.
	ErrNoCapacity = errors.New("cluster: no free slices")
	// ErrClosed is returned after the manager is closed.
	ErrClosed = errors.New("cluster: manager closed")
)

// SliceSpec is the resource reservation of one slice.
type SliceSpec struct {
	CPUs  float64
	MemMB int
}

// Slice is a granted resource offer: a reservation on one node.
type Slice struct {
	ID   int
	Node string
	Spec SliceSpec
}

// NotificationKind classifies administrator notifications.
type NotificationKind int

// Notification kinds.
const (
	// UtilizationHigh fires when utilization rises above the high threshold.
	UtilizationHigh NotificationKind = iota + 1
	// UtilizationLow fires when utilization drops below the low threshold.
	UtilizationLow
)

// Notification is an administrator alert about cluster utilization (§4.2:
// "ElasticRMI also enables administrators to be notified if the utilization
// of the Mesos cluster exceeds or falls below thresholds").
type Notification struct {
	Kind        NotificationKind
	Utilization float64 // fraction of slices in use, [0,1]
	At          time.Time
}

// Config configures a Manager.
type Config struct {
	// Nodes is the number of nodes in the cluster.
	Nodes int
	// SlicesPerNode is how many slices each node is divided into.
	SlicesPerNode int
	// Spec is the per-slice reservation. Zero value defaults to 2 CPUs/2GB,
	// the example reservation in the paper.
	Spec SliceSpec
	// ProvisionLatency returns how long bringing up a slice takes, given the
	// current utilization fraction. Nil means instantaneous.
	ProvisionLatency func(utilization float64) time.Duration
	// Clock is the time source; nil means wall clock.
	Clock simclock.Clock
	// UtilHigh and UtilLow are admin-notification thresholds in [0,1].
	// Both zero disables notifications.
	UtilHigh, UtilLow float64
}

// Manager owns the cluster's slices.
type Manager struct {
	clock   simclock.Clock
	latency func(float64) time.Duration
	high    float64
	low     float64

	mu       sync.Mutex
	free     []*Slice
	inUse    map[int]*Slice
	nodeUsed map[string]int
	total    int
	closed   bool
	failed   map[string]bool
	notifyCh chan Notification
	revoked  chan *Slice
	revSubs  []chan *Slice
	wasHigh  bool
	wasLow   bool
}

// New creates a Manager per cfg.
func New(cfg Config) (*Manager, error) {
	if cfg.Nodes <= 0 || cfg.SlicesPerNode <= 0 {
		return nil, fmt.Errorf("cluster: need positive nodes (%d) and slices per node (%d)", cfg.Nodes, cfg.SlicesPerNode)
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	spec := cfg.Spec
	if spec.CPUs == 0 {
		spec.CPUs = 2
	}
	if spec.MemMB == 0 {
		spec.MemMB = 2048
	}
	m := &Manager{
		clock:    cfg.Clock,
		latency:  cfg.ProvisionLatency,
		high:     cfg.UtilHigh,
		low:      cfg.UtilLow,
		inUse:    make(map[int]*Slice),
		nodeUsed: make(map[string]int),
		failed:   make(map[string]bool),
		notifyCh: make(chan Notification, 16),
		revoked:  make(chan *Slice, 16),
	}
	id := 0
	for n := 0; n < cfg.Nodes; n++ {
		node := fmt.Sprintf("node-%03d", n)
		for s := 0; s < cfg.SlicesPerNode; s++ {
			m.free = append(m.free, &Slice{ID: id, Node: node, Spec: spec})
			id++
		}
	}
	m.total = id
	return m, nil
}

// Total returns the number of slices in the cluster.
func (m *Manager) Total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// InUse returns the number of granted slices.
func (m *Manager) InUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inUse)
}

// Utilization returns the fraction of slices in use.
func (m *Manager) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.utilizationLocked()
}

func (m *Manager) utilizationLocked() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(len(m.inUse)) / float64(m.total)
}

// Notifications delivers administrator utilization alerts. The channel is
// buffered; alerts are dropped if nobody drains it.
func (m *Manager) Notifications() <-chan Notification { return m.notifyCh }

// Revoked delivers slices revoked by node failure (failure injection).
func (m *Manager) Revoked() <-chan *Slice { return m.revoked }

// SubscribeRevoked returns an additional revocation stream. Every
// subscriber (e.g. each elastic pool holding slices) receives every revoked
// slice; buffered, dropped if not drained.
func (m *Manager) SubscribeRevoked() <-chan *Slice {
	ch := make(chan *Slice, 16)
	m.mu.Lock()
	m.revSubs = append(m.revSubs, ch)
	m.mu.Unlock()
	return ch
}

// Acquire grants up to n slices, spreading them over distinct nodes where
// possible (the runtime never co-locates two pool members on one slice, and
// prefers distinct machines — §2.4). It blocks for the provisioning latency
// of the granted slices. If fewer than n are free it grants what is
// available (paper §4.2: "If only l < k are available, then only l objects
// are created"); if none are free it returns ErrNoCapacity.
func (m *Manager) Acquire(n int) ([]*Slice, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: acquire %d slices", n)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.free) == 0 {
		m.mu.Unlock()
		return nil, ErrNoCapacity
	}
	// Prefer slices on the least-loaded nodes to spread members; re-evaluate
	// after every grant so one request also spreads.
	granted := make([]*Slice, 0, n)
	for len(granted) < n && len(m.free) > 0 {
		best := 0
		for i, s := range m.free {
			if m.nodeUsed[s.Node] < m.nodeUsed[m.free[best].Node] {
				best = i
			}
		}
		s := m.free[best]
		m.free = append(m.free[:best], m.free[best+1:]...)
		m.inUse[s.ID] = s
		m.nodeUsed[s.Node]++
		granted = append(granted, s)
	}
	util := m.utilizationLocked()
	m.checkThresholdsLocked(util)
	var wait time.Duration
	if m.latency != nil {
		wait = m.latency(util)
	}
	m.mu.Unlock()

	if wait > 0 {
		m.clock.Sleep(wait)
	}
	return granted, nil
}

// AcquireOne grants a single slice.
func (m *Manager) AcquireOne() (*Slice, error) {
	slices, err := m.Acquire(1)
	if err != nil {
		return nil, err
	}
	return slices[0], nil
}

// Release returns a slice to the pool, making it available to other elastic
// objects in the cluster (§2.5).
func (m *Manager) Release(s *Slice) error {
	if s == nil {
		return errors.New("cluster: release nil slice")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.inUse[s.ID]; !ok {
		return fmt.Errorf("cluster: slice %d not in use", s.ID)
	}
	delete(m.inUse, s.ID)
	m.nodeUsed[s.Node]--
	if !m.failed[s.Node] {
		m.free = append(m.free, s)
	}
	m.checkThresholdsLocked(m.utilizationLocked())
	return nil
}

// FailNode simulates the failure of a node: its free slices disappear and
// its granted slices are revoked (delivered on Revoked).
func (m *Manager) FailNode(node string) {
	m.mu.Lock()
	if m.failed[node] {
		m.mu.Unlock()
		return
	}
	m.failed[node] = true
	keep := m.free[:0]
	removed := 0
	for _, s := range m.free {
		if s.Node == node {
			removed++
			continue
		}
		keep = append(keep, s)
	}
	m.free = keep
	m.total -= removed
	var revoked []*Slice
	for id, s := range m.inUse {
		if s.Node == node {
			revoked = append(revoked, s)
			delete(m.inUse, id)
			m.total--
		}
	}
	m.nodeUsed[node] = 0
	subs := append([]chan *Slice(nil), m.revSubs...)
	m.mu.Unlock()
	for _, s := range revoked {
		select {
		case m.revoked <- s:
		default:
		}
		for _, sub := range subs {
			select {
			case sub <- s:
			default:
			}
		}
	}
}

// RecoverNode undoes FailNode; the node's slices rejoin the free pool.
func (m *Manager) RecoverNode(node string, slicesPerNode int, spec SliceSpec) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.failed[node] {
		return
	}
	delete(m.failed, node)
	maxID := 0
	for _, s := range m.free {
		if s.ID > maxID {
			maxID = s.ID
		}
	}
	for id := range m.inUse {
		if id > maxID {
			maxID = id
		}
	}
	for i := 0; i < slicesPerNode; i++ {
		maxID++
		m.free = append(m.free, &Slice{ID: maxID, Node: node, Spec: spec})
		m.total++
	}
}

func (m *Manager) checkThresholdsLocked(util float64) {
	if m.high == 0 && m.low == 0 {
		return
	}
	if m.high > 0 && util >= m.high {
		if !m.wasHigh {
			m.wasHigh = true
			m.pushNotification(Notification{Kind: UtilizationHigh, Utilization: util, At: m.clock.Now()})
		}
	} else {
		m.wasHigh = false
	}
	if m.low > 0 && util <= m.low {
		if !m.wasLow {
			m.wasLow = true
			m.pushNotification(Notification{Kind: UtilizationLow, Utilization: util, At: m.clock.Now()})
		}
	} else {
		m.wasLow = false
	}
}

func (m *Manager) pushNotification(n Notification) {
	select {
	case m.notifyCh <- n:
	default: // drop if nobody is listening
	}
}

// Close shuts the manager down. Outstanding slices become invalid.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
}
