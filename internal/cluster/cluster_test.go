package cluster

import (
	"errors"
	"testing"
	"time"

	"elasticrmi/internal/simclock"
)

func TestAcquireReleaseAccounting(t *testing.T) {
	m, err := New(Config{Nodes: 4, SlicesPerNode: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.Total() != 8 {
		t.Fatalf("total = %d, want 8", m.Total())
	}
	slices, err := m.Acquire(3)
	if err != nil || len(slices) != 3 {
		t.Fatalf("Acquire(3) = %d, %v", len(slices), err)
	}
	if m.InUse() != 3 {
		t.Fatalf("in use = %d, want 3", m.InUse())
	}
	for _, s := range slices {
		if err := m.Release(s); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	if m.InUse() != 0 {
		t.Fatalf("in use after release = %d, want 0", m.InUse())
	}
	if err := m.Release(slices[0]); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestAcquireSpreadsOverNodes(t *testing.T) {
	m, err := New(Config{Nodes: 4, SlicesPerNode: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	slices, err := m.Acquire(4)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	nodes := make(map[string]bool)
	for _, s := range slices {
		nodes[s.Node] = true
	}
	if len(nodes) != 4 {
		t.Fatalf("4 slices on %d nodes, want 4 distinct (§2.4 spreading)", len(nodes))
	}
}

func TestAcquirePartialGrant(t *testing.T) {
	m, err := New(Config{Nodes: 3, SlicesPerNode: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	slices, err := m.Acquire(10)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if len(slices) != 3 {
		t.Fatalf("granted %d, want 3 (l < k grants, §4.2)", len(slices))
	}
	if _, err := m.Acquire(1); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("exhausted Acquire = %v, want ErrNoCapacity", err)
	}
}

func TestProvisioningLatencyApplied(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m, err := New(Config{
		Nodes: 2, SlicesPerNode: 1, Clock: clock,
		ProvisionLatency: func(util float64) time.Duration { return 10 * time.Second },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	done := make(chan time.Time, 1)
	go func() {
		if _, err := m.Acquire(1); err != nil {
			t.Error(err)
		}
		done <- clock.Now()
	}()
	// Wait for the goroutine to register its sleep, then advance.
	for clock.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	clock.Advance(10 * time.Second)
	at := <-done
	if got := at.Sub(time.Unix(0, 0)); got < 10*time.Second {
		t.Fatalf("acquire returned after %v, want >= 10s provisioning latency", got)
	}
}

func TestUtilizationNotifications(t *testing.T) {
	m, err := New(Config{Nodes: 4, SlicesPerNode: 1, UtilHigh: 0.75, UtilLow: 0.25})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	slices, err := m.Acquire(3) // utilization hits 0.75
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	select {
	case n := <-m.Notifications():
		if n.Kind != UtilizationHigh {
			t.Fatalf("notification kind = %v, want high", n.Kind)
		}
	default:
		t.Fatal("no high-utilization notification")
	}
	for _, s := range slices {
		m.Release(s)
	}
	select {
	case n := <-m.Notifications():
		if n.Kind != UtilizationLow {
			t.Fatalf("notification kind = %v, want low", n.Kind)
		}
	default:
		t.Fatal("no low-utilization notification")
	}
}

func TestFailNodeRevokesSlices(t *testing.T) {
	m, err := New(Config{Nodes: 2, SlicesPerNode: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	slices, err := m.Acquire(4)
	if err != nil || len(slices) != 4 {
		t.Fatalf("Acquire = %d, %v", len(slices), err)
	}
	victim := slices[0].Node
	m.FailNode(victim)
	revoked := 0
	for {
		select {
		case <-m.Revoked():
			revoked++
			continue
		default:
		}
		break
	}
	if revoked != 2 {
		t.Fatalf("revoked %d slices, want 2", revoked)
	}
	if m.Total() != 2 {
		t.Fatalf("total after failure = %d, want 2", m.Total())
	}
	// Releasing a revoked slice must not return it to the free pool.
	for _, s := range slices {
		if s.Node == victim {
			continue
		}
		if err := m.Release(s); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	m.RecoverNode(victim, 2, SliceSpec{CPUs: 2, MemMB: 2048})
	if m.Total() != 4 {
		t.Fatalf("total after recovery = %d, want 4", m.Total())
	}
	if got, err := m.Acquire(4); err != nil || len(got) != 4 {
		t.Fatalf("Acquire after recovery = %d, %v", len(got), err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, SlicesPerNode: 1}); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := New(Config{Nodes: 1, SlicesPerNode: 0}); err == nil {
		t.Fatal("accepted zero slices per node")
	}
	m, err := New(Config{Nodes: 1, SlicesPerNode: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := m.Acquire(0); err == nil {
		t.Fatal("Acquire(0) succeeded")
	}
	if err := m.Release(nil); err == nil {
		t.Fatal("Release(nil) succeeded")
	}
}

func TestClosedManager(t *testing.T) {
	m, err := New(Config{Nodes: 1, SlicesPerNode: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := m.AcquireOne()
	if err != nil {
		t.Fatalf("AcquireOne: %v", err)
	}
	m.Close()
	if _, err := m.Acquire(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire after close = %v, want ErrClosed", err)
	}
	if err := m.Release(s); !errors.Is(err, ErrClosed) {
		t.Fatalf("Release after close = %v, want ErrClosed", err)
	}
}
