package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"elasticrmi/internal/kvstore"
	"elasticrmi/internal/simclock"
)

// State is the shared-state accessor of an elastic class. In the paper the
// preprocessor rewrites reads and writes of instance and static fields into
// get/put calls on HyperDex, namespacing keys as "Class$field", and rewrites
// synchronized methods into acquire/release of a per-class lock (Fig. 6).
// State exposes exactly those operations. As in the paper, State provides
// per-operation strong consistency and per-class mutual exclusion, but no
// transactional (ACID) execution across operations.
type State struct {
	class string
	owner string
	store kvstore.Shared
	clock simclock.Clock
	lease time.Duration
	// acqSeq makes each lock acquisition's owner id unique: the store's
	// TryLock treats a repeated acquisition by the same owner as a lease
	// renewal, which must never happen for two concurrent critical sections
	// on the same member.
	acqSeq atomic.Int64
}

// acquireOwner returns a per-acquisition unique lock owner id.
func (s *State) acquireOwner() string {
	return s.owner + "#" + strconv.FormatInt(s.acqSeq.Add(1), 10)
}

// withRetry runs op, retrying with exponential backoff while the store
// reports its shard unavailable — the window in which the cluster is
// promoting a backup after a node loss. Field access and lock traffic of
// elastic objects thereby survive a store-node failure instead of
// surfacing a transient infrastructure error to application code. Other
// errors (and exhaustion of the retry budget) pass through.
func (s *State) withRetry(op func() error) error {
	backoff := 5 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !isUnavailable(err) || attempt >= stateRetries {
			return err
		}
		s.clock.Sleep(backoff)
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// stateRetries bounds withRetry: enough attempts to ride out a failover
// (which completes in well under a second), few enough that a truly dead
// store surfaces within seconds.
const stateRetries = 6

// NewState creates the accessor for an elastic class. owner identifies the
// pool member for lock ownership (e.g. "cache/uid-7"); clock may be nil for
// the wall clock.
func NewState(class, owner string, store kvstore.Shared, clock simclock.Clock) *State {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &State{
		class: class,
		owner: owner,
		store: store,
		clock: clock,
		lease: 30 * time.Second,
	}
}

// Key returns the store key for a field of this class ("Class$field").
func (s *State) Key(field string) string {
	return s.class + "$" + field
}

// GetBytes reads a field's raw value; missing fields return nil.
func (s *State) GetBytes(field string) ([]byte, error) {
	var v kvstore.Versioned
	err := s.withRetry(func() (err error) {
		v, err = s.store.Get(s.Key(field))
		return err
	})
	if err != nil {
		if isNotFound(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("state get %s: %w", field, err)
	}
	return v.Value, nil
}

// PutBytes writes a field's raw value.
func (s *State) PutBytes(field string, value []byte) error {
	err := s.withRetry(func() error {
		_, err := s.store.Put(s.Key(field), value)
		return err
	})
	if err != nil {
		return fmt.Errorf("state put %s: %w", field, err)
	}
	return nil
}

// GetInt reads an integer field (0 when missing).
func (s *State) GetInt(field string) (v int64, err error) {
	err = s.withRetry(func() (err error) {
		v, err = s.store.GetInt64(s.Key(field))
		return err
	})
	return v, err
}

// PutInt writes an integer field.
func (s *State) PutInt(field string, value int64) error {
	return s.withRetry(func() error { return s.store.PutInt64(s.Key(field), value) })
}

// AddInt atomically adds delta to an integer field and returns the result.
// Note the failover caveat: a retried add whose first attempt was applied
// but not acknowledged counts twice (the store's add is not idempotent);
// counters that must be exact under failures should use CAS loops instead.
func (s *State) AddInt(field string, delta int64) (v int64, err error) {
	err = s.withRetry(func() (err error) {
		v, err = s.store.AddInt64(s.Key(field), delta)
		return err
	})
	return v, err
}

// GetString reads a string field ("" when missing).
func (s *State) GetString(field string) (v string, err error) {
	err = s.withRetry(func() (err error) {
		v, err = s.store.GetString(s.Key(field))
		return err
	})
	return v, err
}

// PutString writes a string field.
func (s *State) PutString(field, value string) error {
	return s.withRetry(func() error { return s.store.PutString(s.Key(field), value) })
}

// GetFloat reads a float field (0 when missing).
func (s *State) GetFloat(field string) (float64, error) {
	raw, err := s.GetString(field)
	if err != nil || raw == "" {
		return 0, err
	}
	f, perr := strconv.ParseFloat(raw, 64)
	if perr != nil {
		return 0, fmt.Errorf("state field %s is not a float: %w", field, perr)
	}
	return f, nil
}

// PutFloat writes a float field.
func (s *State) PutFloat(field string, value float64) error {
	return s.PutString(field, strconv.FormatFloat(value, 'g', -1, 64))
}

// Delete removes a field.
func (s *State) Delete(field string) error {
	return s.withRetry(func() error { return s.store.Delete(s.Key(field)) })
}

// Fields lists the class's stored field names.
func (s *State) Fields() ([]string, error) {
	var keys []string
	err := s.withRetry(func() (err error) {
		keys, err = s.store.Keys(s.class + "$")
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k[len(s.class)+1:])
	}
	return out, nil
}

// Synchronized executes fn while holding the per-class lock, exactly like a
// synchronized method of an elastic class in the paper. It spins with
// backoff until the lock is acquired.
func (s *State) Synchronized(fn func() error) error {
	return s.SynchronizedNamed(s.class, fn)
}

// SynchronizedNamed is Synchronized with an explicit lock name, for
// finer-grained application locks. Contention and shard failover are both
// retried: ErrLockHeld spins with backoff indefinitely (another member is
// in the critical section), while shard unavailability is retried on the
// bounded withRetry budget (a failover in progress) and then surfaces.
func (s *State) SynchronizedNamed(name string, fn func() error) error {
	owner := s.acquireOwner()
	backoff := time.Millisecond
	for {
		err := s.withRetry(func() error { return s.store.TryLock(name, owner, s.lease) })
		if err == nil {
			break
		}
		if !isLockHeld(err) {
			return fmt.Errorf("state lock %s: %w", name, err)
		}
		s.clock.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	defer func() {
		_ = s.withRetry(func() error { return s.store.Unlock(name, owner) })
	}()
	return fn()
}

// TryLock attempts a named application lock without blocking; callers use it
// to build contention metrics like avgLockAcqFailure of Fig. 5. On success
// it returns a release function and true.
func (s *State) TryLock(name string) (release func() error, ok bool, err error) {
	owner := s.acquireOwner()
	lerr := s.withRetry(func() error { return s.store.TryLock(name, owner, s.lease) })
	if lerr == nil {
		return func() error {
			err := s.withRetry(func() error { return s.store.Unlock(name, owner) })
			if err != nil && errors.Is(err, kvstore.ErrNotLockOwner) {
				// Release is idempotent under failover: if the first attempt
				// applied but its ack was lost, the retry lands on a replica
				// that already holds the release tombstone and reports
				// not-owner — the lock is released either way. (The same
				// answer for an expired-and-stolen lease is also correct:
				// this owner no longer holds it.)
				return nil
			}
			return err
		}, true, nil
	}
	if isLockHeld(lerr) {
		return nil, false, nil
	}
	return nil, false, lerr
}

// Store exposes the underlying shared store for application data structures
// that need direct keys (e.g. the DCS znode tree).
func (s *State) Store() kvstore.Shared { return s.store }

func isNotFound(err error) bool    { return errors.Is(err, kvstore.ErrNotFound) }
func isLockHeld(err error) bool    { return errors.Is(err, kvstore.ErrLockHeld) }
func isUnavailable(err error) bool { return errors.Is(err, kvstore.ErrUnavailable) }
