package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/group"
	"elasticrmi/internal/metrics"
	"elasticrmi/internal/transport"
)

// Reserved skeleton methods. They share the pool's transport service with
// the application's remote methods but are handled by the skeleton itself.
const (
	// MethodDiscover asks a skeleton for the identities (address, UID) of
	// the members of its pool. Stubs call it on first contact with the
	// sentinel (§4.3).
	MethodDiscover = "__discover"
	// MethodPing is a liveness probe.
	MethodPing = "__ping"
	// MethodStats asks a skeleton for its member's workload statistics
	// (admin/observability surface).
	MethodStats = "__stats"
)

// StatsReply answers MethodStats with the member's last completed burst
// interval.
type StatsReply struct {
	Pool     string
	UID      int64
	Pending  int
	Draining bool
	CPU      float64
	RAM      float64
	Methods  []metrics.MethodStat
}

// Group topics used inside a pool.
const (
	topicPoolState = "poolstate"
	topicRebalance = "rebalance"
	// appTopicPrefix namespaces application peer messages away from the
	// runtime's own topics.
	appTopicPrefix = "app:"
)

// MemberInfo describes one pool member as seen in pool-state broadcasts and
// discovery replies.
type MemberInfo struct {
	Addr     string // skeleton (invocation) address
	Group    string // group-communication address
	UID      int64
	Pending  int
	Draining bool
}

// DiscoverReply answers MethodDiscover.
type DiscoverReply struct {
	Pool    string
	Members []MemberInfo // sentinel first
}

type poolStateMsg struct {
	ViewID  uint64
	Members []MemberInfo
}

type rebalanceMsg struct {
	Plans []RedirectPlan
}

// member is one object of the elastic pool: the application Object plus its
// skeleton (transport server), group endpoint and meter. It corresponds to
// one JVM on one Mesos slice in the paper.
type member struct {
	pool  *Pool
	uid   int64
	slice *cluster.Slice
	obj   Object
	ctx   *MemberContext
	meter *metrics.Meter
	srv   *transport.Server
	gm    *group.Member

	draining atomic.Bool

	mu        sync.Mutex
	roster    []MemberInfo // last known pool membership, sentinel first
	plan      *RedirectPlan
	lastStats map[string]metrics.MethodStat
	lastUsage metrics.Usage
	closed    bool

	msgStop chan struct{}
	msgDone chan struct{}
}

// skeleton request handling.
func (m *member) handle(req *transport.Request) ([]byte, error) {
	if req.Service != m.pool.cfg.Name {
		return nil, fmt.Errorf("unknown service %q", req.Service)
	}
	switch req.Method {
	case MethodDiscover:
		return transport.Encode(DiscoverReply{Pool: m.pool.cfg.Name, Members: m.rosterCopy()})
	case MethodPing:
		return nil, nil
	case MethodStats:
		usage := m.cachedUsage()
		stats := m.cachedStats()
		methods := make([]metrics.MethodStat, 0, len(stats))
		for _, st := range stats {
			methods = append(methods, st)
		}
		sort.Slice(methods, func(i, j int) bool { return methods[i].Method < methods[j].Method })
		return transport.Encode(StatsReply{
			Pool:     m.pool.cfg.Name,
			UID:      m.uid,
			Pending:  m.meter.InFlight(),
			Draining: m.draining.Load(),
			CPU:      usage.CPU,
			RAM:      usage.RAM,
			Methods:  methods,
		})
	}
	// One-way invocations get no response, so a redirect would be a silent
	// drop: execute them locally instead — a draining member still serves
	// its in-flight work (§2.5), and rebalance shedding only steers load.
	if !req.OneWay {
		if m.draining.Load() {
			// The skeleton redirects all further invocations to other
			// objects in the pool after the runtime decides to shut it
			// down (§2.3).
			return nil, &transport.RedirectError{Targets: m.otherAddrs()}
		}
		if targets, ok := m.redirectTarget(); ok {
			// Server-side rebalancing: shed a fraction of arrivals to the
			// targets the sentinel's bin-packing plan selected (§4.3).
			return nil, &transport.RedirectError{Targets: targets}
		}
	}
	finish := m.meter.Begin(req.Method)
	defer finish()
	return m.obj.HandleCall(req.Method, req.Payload)
}

func (m *member) rosterCopy() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MemberInfo(nil), m.roster...)
}

func (m *member) otherAddrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.roster))
	for _, info := range m.roster {
		if info.Addr != m.srv.Addr() && !info.Draining {
			out = append(out, info.Addr)
		}
	}
	return out
}

// redirectTarget decides probabilistically whether this arrival should be
// redirected under the current rebalance plan.
func (m *member) redirectTarget() ([]string, bool) {
	m.mu.Lock()
	plan := m.plan
	m.mu.Unlock()
	if plan == nil || plan.Fraction <= 0 || len(plan.Targets) == 0 {
		return nil, false
	}
	if rand.Float64() >= plan.Fraction { //nolint:gosec // balancing, not crypto
		return nil, false
	}
	return append([]string(nil), plan.Targets...), true
}

// messageLoop consumes group traffic: pool-state broadcasts from the
// sentinel and rebalance instructions.
func (m *member) messageLoop() {
	defer close(m.msgDone)
	for {
		var msg group.Message
		select {
		case <-m.msgStop:
			return
		case msg = <-m.gm.Messages():
		}
		switch msg.Topic {
		case topicPoolState:
			var st poolStateMsg
			if err := transport.Decode(msg.Payload, &st); err != nil {
				continue
			}
			m.mu.Lock()
			m.roster = st.Members
			m.mu.Unlock()
		case topicRebalance:
			var rb rebalanceMsg
			if err := transport.Decode(msg.Payload, &rb); err != nil {
				continue
			}
			var mine *RedirectPlan
			for i := range rb.Plans {
				if rb.Plans[i].From == m.srv.Addr() {
					mine = &rb.Plans[i]
					break
				}
			}
			m.mu.Lock()
			m.plan = mine
			m.mu.Unlock()
		default:
			if len(msg.Topic) > len(appTopicPrefix) && msg.Topic[:len(appTopicPrefix)] == appTopicPrefix {
				m.ctx.deliverPeer(msg.From, msg.Topic[len(appTopicPrefix):], msg.Payload)
			}
		}
	}
}

// rollWindow finishes the member's current metrics window, caching the
// snapshot that MemberContext exposes to the application during the next
// burst interval.
func (m *member) rollWindow() ([]metrics.MethodStat, metrics.Usage) {
	stats, usage := m.meter.Window()
	m.mu.Lock()
	m.lastStats = metrics.StatsMap(stats)
	m.lastUsage = usage
	m.mu.Unlock()
	return stats, usage
}

func (m *member) cachedStats() map[string]metrics.MethodStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]metrics.MethodStat, len(m.lastStats))
	for k, v := range m.lastStats {
		out[k] = v
	}
	return out
}

func (m *member) cachedUsage() metrics.Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastUsage
}

// drain implements the §2.5 removal protocol: redirect new invocations, wait
// for pending ones to finish (or the timeout to expire), then shut down.
func (m *member) drain(timeout time.Duration) {
	m.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for m.meter.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}
}

// close releases the member's servers. Safe to call twice.
func (m *member) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.msgStop)
	if c, ok := m.obj.(Closer); ok {
		_ = c.Close()
	}
	_ = m.srv.Close()
	_ = m.gm.Close()
	<-m.msgDone
}

// kill abruptly terminates the member without draining (failure injection).
func (m *member) kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.msgStop)
	_ = m.srv.Close()
	_ = m.gm.Close()
	<-m.msgDone
}
