package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/group"
	"elasticrmi/internal/metrics"
	"elasticrmi/internal/route"
	"elasticrmi/internal/transport"
)

// Reserved skeleton methods. They share the pool's transport service with
// the application's remote methods but are handled by the skeleton itself.
const (
	// MethodDiscover asks a skeleton for the identities (address, UID) of
	// the members of its pool. Stubs no longer need it — the routing table
	// reaches them piggybacked on ordinary replies — but it remains the
	// admin/observability surface (ermi-admin).
	MethodDiscover = "__discover"
	// MethodPing is a liveness probe.
	MethodPing = "__ping"
	// MethodStats asks a skeleton for its member's workload statistics
	// (admin/observability surface).
	MethodStats = "__stats"
)

// StatsReply answers MethodStats with the member's last completed burst
// interval.
type StatsReply struct {
	Pool     string
	UID      int64
	Pending  int
	Draining bool
	CPU      float64
	RAM      float64
	// Shed / Expired are the skeleton's cumulative admission-control
	// counters: invocations refused with an overload reply, and invocations
	// dropped because their deadline budget expired in queue.
	Shed    uint64
	Expired uint64
	Methods []metrics.MethodStat
}

// Group topics used inside a pool.
const (
	topicPoolState = "poolstate"
	// appTopicPrefix namespaces application peer messages away from the
	// runtime's own topics.
	appTopicPrefix = "app:"
)

// MemberInfo describes one pool member as seen in pool-state broadcasts and
// discovery replies.
type MemberInfo struct {
	Addr     string // skeleton (invocation) address
	Group    string // group-communication address
	UID      int64
	Pending  int
	Draining bool
}

// DiscoverReply answers MethodDiscover.
type DiscoverReply struct {
	Pool    string
	Epoch   uint64
	Members []MemberInfo // sentinel first
}

// poolStateMsg is the sentinel's periodic pool-state broadcast: the roster
// for discovery answers plus the epoch-stamped routing table members serve
// to stale clients.
type poolStateMsg struct {
	Table   route.Table
	Members []MemberInfo
}

// member is one object of the elastic pool: the application Object plus its
// skeleton (transport server), group endpoint and meter. It corresponds to
// one JVM on one Mesos slice in the paper.
type member struct {
	pool  *Pool
	uid   int64
	slice *cluster.Slice
	obj   Object
	ctx   *MemberContext
	meter *metrics.Meter
	srv   *transport.Server
	gm    *group.Member

	draining atomic.Bool

	// table is the newest routing table this member holds; the transport
	// server snapshots it per response to piggyback route updates to stale
	// clients.
	table atomic.Pointer[route.Table]

	mu        sync.Mutex
	roster    []MemberInfo // last known pool membership, sentinel first
	lastStats map[string]metrics.MethodStat
	lastUsage metrics.Usage
	// lastSrv is the skeleton's cumulative admission counters at the last
	// window roll; rollWindow feeds the delta into the meter so Shed/Expired
	// in Usage are per-window like everything else.
	lastSrv transport.ServerStats
	closed  bool

	msgStop chan struct{}
	msgDone chan struct{}
}

// currentTable snapshots the member's routing table (transport.RouteSource).
func (m *member) currentTable() route.Table {
	if t := m.table.Load(); t != nil {
		return *t
	}
	return route.Table{}
}

// setTable installs t if it is newer than what the member holds.
func (m *member) setTable(t route.Table) {
	for {
		cur := m.table.Load()
		if cur != nil && t.Epoch <= cur.Epoch {
			return
		}
		fresh := t.Clone()
		if m.table.CompareAndSwap(cur, &fresh) {
			return
		}
	}
}

// skeleton request handling.
func (m *member) handle(req *transport.Request) ([]byte, error) {
	if req.Service != m.pool.cfg.Name {
		return nil, fmt.Errorf("unknown service %q", req.Service)
	}
	switch req.Method {
	case MethodDiscover:
		t := m.currentTable()
		req.ReleaseReply = true
		return transport.Encode(DiscoverReply{Pool: m.pool.cfg.Name, Epoch: t.Epoch, Members: m.rosterCopy()})
	case MethodPing:
		return nil, nil
	case MethodStats:
		usage := m.cachedUsage()
		stats := m.cachedStats()
		methods := make([]metrics.MethodStat, 0, len(stats))
		for _, st := range stats {
			methods = append(methods, st)
		}
		sort.Slice(methods, func(i, j int) bool { return methods[i].Method < methods[j].Method })
		srvStats := m.srv.Stats()
		req.ReleaseReply = true
		return transport.Encode(StatsReply{
			Pool:     m.pool.cfg.Name,
			UID:      m.uid,
			Pending:  m.meter.InFlight(),
			Draining: m.draining.Load(),
			CPU:      usage.CPU,
			RAM:      usage.RAM,
			Shed:     srvStats.Shed,
			Expired:  srvStats.Expired,
			Methods:  methods,
		})
	}
	// A draining member still serves every invocation that reaches it
	// (§2.5's pending work, plus arrivals from stale clients): the client
	// is steered away not by refusal but by the piggybacked routing table
	// on this very reply, which excludes the member. One-way invocations
	// get the same treatment minus the correction (they carry no reply).
	finish := m.meter.Begin(req.Method)
	defer finish()
	if rh, ok := m.obj.(RequestHandler); ok {
		return rh.HandleRequest(req)
	}
	return m.obj.HandleCall(req.Method, req.Payload)
}

func (m *member) rosterCopy() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MemberInfo(nil), m.roster...)
}

// messageLoop consumes group traffic: pool-state broadcasts from the
// sentinel (roster + routing table) and application peer messages.
func (m *member) messageLoop() {
	defer close(m.msgDone)
	for {
		var msg group.Message
		select {
		case <-m.msgStop:
			return
		case msg = <-m.gm.Messages():
		}
		switch msg.Topic {
		case topicPoolState:
			var st poolStateMsg
			if err := transport.Decode(msg.Payload, &st); err != nil {
				continue
			}
			m.mu.Lock()
			m.roster = st.Members
			m.mu.Unlock()
			m.setTable(st.Table)
		default:
			if len(msg.Topic) > len(appTopicPrefix) && msg.Topic[:len(appTopicPrefix)] == appTopicPrefix {
				m.ctx.deliverPeer(msg.From, msg.Topic[len(appTopicPrefix):], msg.Payload)
			}
		}
	}
}

// rollWindow finishes the member's current metrics window, caching the
// snapshot that MemberContext exposes to the application during the next
// burst interval. The skeleton's admission counters (shed / expired work)
// are folded into the window first, so policies see overload and
// utilization in one observation.
func (m *member) rollWindow() ([]metrics.MethodStat, metrics.Usage) {
	srv := m.srv.Stats()
	m.mu.Lock()
	last := m.lastSrv
	m.lastSrv = srv
	m.mu.Unlock()
	m.meter.AddShed(int64(srv.Shed - last.Shed))
	m.meter.AddExpired(int64(srv.Expired - last.Expired))
	stats, usage := m.meter.Window()
	m.mu.Lock()
	m.lastStats = metrics.StatsMap(stats)
	m.lastUsage = usage
	m.mu.Unlock()
	return stats, usage
}

func (m *member) cachedStats() map[string]metrics.MethodStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]metrics.MethodStat, len(m.lastStats))
	for k, v := range m.lastStats {
		out[k] = v
	}
	return out
}

func (m *member) cachedUsage() metrics.Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastUsage
}

// drain implements the §2.5 removal protocol under epoch routing: the
// member keeps serving while every reply steers its callers to the new
// table (which excludes it); once the in-flight count reaches zero (or the
// timeout expires) the skeleton quiesces — late arrivals are dropped
// unexecuted and every acknowledged response is flushed to the wire — so
// the close that follows can never cut an ack and trick a retrying caller
// into a duplicate execution.
// It reports whether the member went down clean; false means the timeout
// forced the shutdown with work still in flight, so at-most-once may have
// been forfeited for the calls that were cut.
func (m *member) drain(timeout time.Duration) bool {
	m.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for m.meter.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}
	quiesce := time.Until(deadline)
	if quiesce < 100*time.Millisecond {
		quiesce = 100 * time.Millisecond
	}
	return m.srv.Quiesce(quiesce)
}

// close releases the member's servers. Safe to call twice.
func (m *member) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.msgStop)
	if c, ok := m.obj.(Closer); ok {
		_ = c.Close()
	}
	_ = m.srv.Close()
	_ = m.gm.Close()
	<-m.msgDone
}

// kill abruptly terminates the member without draining (failure injection).
func (m *member) kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.msgStop)
	_ = m.srv.Close()
	_ = m.gm.Close()
	<-m.msgDone
}
