package core

import (
	"errors"
	"fmt"
	"sync"

	"elasticrmi/internal/transport"
)

// This file is the stub half of the asynchronous invocation pipeline: the
// synchronous Invoke of stub.go decouples into submission (InvokeAsync,
// InvokeOneWay) and completion (AsyncCall), so one caller can keep many
// invocations in flight against the elastic pool. The first attempt rides
// the transport's pipelined Go path — and its adaptive batcher when the
// stub was built WithBatching — while failures fall back to the full
// synchronous failover loop (redirects, member retry, refresh), keeping
// the paper's "error surfaces only when the whole pool is unreachable"
// contract.

// AsyncCall is the stub-level future of one asynchronous invocation. It
// always completes: retries and failovers happen behind it.
type AsyncCall struct {
	done chan struct{}
	out  []byte
	err  error
}

func newCompletedAsync(err error) *AsyncCall {
	ac := &AsyncCall{done: make(chan struct{}), err: err}
	close(ac.done)
	return ac
}

// Done returns a channel closed when the invocation completes.
func (ac *AsyncCall) Done() <-chan struct{} { return ac.done }

// Err blocks until completion and returns the invocation's error.
func (ac *AsyncCall) Err() error {
	<-ac.done
	return ac.err
}

// Result blocks until completion and returns the raw response payload.
func (ac *AsyncCall) Result() ([]byte, error) {
	<-ac.done
	return ac.out, ac.err
}

// Decode blocks until completion and gob-decodes the response payload into
// reply. A nil reply discards the payload.
func (ac *AsyncCall) Decode(reply interface{}) error {
	out, err := ac.Result()
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return transport.Decode(out, reply)
}

// Pending reports the number of asynchronous invocations started on this
// stub that have not completed yet — client-side queued work the member
// meters cannot see until the frames arrive.
func (s *Stub) Pending() int {
	return int(s.pendingN.Load())
}

// InvokeAsync starts one remote method invocation and returns its future
// immediately. Semantics match Invoke: redirects are followed, failed
// members retried, application errors propagated verbatim; only the waiting
// moved off the caller.
func (s *Stub) InvokeAsync(method string, payload []byte) *AsyncCall {
	ac := &AsyncCall{done: make(chan struct{})}
	s.pendingN.Add(1)
	go func() {
		defer s.pendingN.Add(-1)
		defer close(ac.done)
		ac.out, ac.err = s.invokePipelined(method, payload)
	}()
	return ac
}

// invokePipelined makes the first attempt over the pipelined (and, when
// enabled, batched) transport path, then hands anything retryable to the
// synchronous failover loop. First attempt and failover share one
// per-invocation deadline budget: an async invocation is never granted more
// total time than a synchronous one.
func (s *Stub) invokePipelined(method string, payload []byte) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrPoolClosed
	}
	deadline := s.invocationDeadline()
	addr, ok := s.pickFor("")
	if !ok {
		return nil, ErrUnavailable
	}
	c, err := s.conn(addr)
	if err == nil {
		release := s.routes.Acquire(addr)
		out, cerr := c.GoBudget(s.name, method, payload, s.timeout).Wait(s.timeout)
		release()
		switch {
		case cerr == nil:
			s.routes.Readmit(addr)
			return out, nil
		case isRemoteAppError(cerr), errors.Is(cerr, transport.ErrFrameTooLarge):
			// The method executed and failed, or the request cannot be
			// framed anywhere: retrying elsewhere would be wrong.
			return nil, cerr
		case errors.Is(cerr, transport.ErrTimeout):
			// Slow, not dead: keep the shared connection and the member (see
			// invokeDeadline); the exhausted budget stops the failover loop.
			return s.invokeDeadline(method, "", payload, deadline)
		case errors.Is(cerr, transport.ErrOverloaded), errors.Is(cerr, transport.ErrExpired):
			// Saturated, not gone: bias the balancer away and retry on a
			// less-loaded member under what remains of the budget.
			s.routes.MarkLoaded(addr)
			return s.invokeDeadline(method, "", payload, deadline)
		}
		// Transport failure: exclude and hand off to the failover loop.
		s.routes.Exclude(addr)
		s.conns.Drop(addr)
	} else if errors.Is(err, ErrPoolClosed) {
		return nil, err
	} else {
		s.routes.Exclude(addr)
	}
	return s.invokeDeadline(method, "", payload, deadline)
}

// InvokeOneWay submits a fire-and-forget invocation: the member executes
// the method but sends no response, and the caller learns only whether the
// request was accepted toward a reachable member. The invocation is
// at-most-once, and that governs failover too: only failures that
// guarantee nothing was submitted (dial errors, connections already known
// dead) are retried on other members. A write that fails mid-flight is
// ambiguous — the member may have executed it — so it is never resubmitted;
// the member is dropped and the error surfaced. On a batching stub
// submission is asynchronous: a batch-write failure after InvokeOneWay
// returned nil loses the invocation silently and surfaces on the next one.
func (s *Stub) InvokeOneWay(method string, payload []byte) error {
	if s.closed.Load() {
		return ErrPoolClosed
	}
	var lastErr error
	attempts := s.routes.Len() + 2
	for i := 0; i < attempts; i++ {
		addr, ok := s.pickFor("")
		if !ok {
			break
		}
		if i > 0 {
			s.staleRetries.Add(1)
		}
		c, err := s.conn(addr)
		if err == nil {
			werr := c.OneWay(s.name, method, payload)
			if werr == nil {
				s.routes.Readmit(addr)
				return nil
			}
			if errors.Is(werr, transport.ErrFrameTooLarge) {
				return werr // caller-side payload bug; no member can take it
			}
			if !errors.Is(werr, transport.ErrClosed) {
				// The frame may have reached the member before the failure;
				// resubmitting could execute the invocation twice.
				s.routes.Exclude(addr)
				s.conns.Drop(addr)
				return fmt.Errorf("core: %s.%s: one-way delivery uncertain: %w", s.name, method, werr)
			}
			err = werr // refused before submission: safe to try elsewhere
		} else if errors.Is(err, ErrPoolClosed) {
			return err
		}
		lastErr = err
		s.routes.Exclude(addr)
		s.conns.Drop(addr)
	}
	if lastErr == nil {
		lastErr = errors.New("core: no members left to try")
	}
	return fmt.Errorf("%w: %s.%s: %v", ErrUnavailable, s.name, method, lastErr)
}

// Future is the typed stub-level future the generated async stub variants
// return (the counterpart of Call for the asynchronous pipeline).
type Future[Reply any] struct {
	ac   *AsyncCall
	once sync.Once
	rep  Reply
	err  error
}

// Done returns a channel closed when the invocation completes.
func (f *Future[Reply]) Done() <-chan struct{} { return f.ac.Done() }

// Get blocks until completion and returns the decoded reply. Repeated calls
// return the same result without re-decoding.
func (f *Future[Reply]) Get() (Reply, error) {
	f.once.Do(func() {
		f.err = f.ac.Decode(&f.rep)
	})
	return f.rep, f.err
}

// GoCall is the typed asynchronous counterpart of Call: it encodes the
// argument, starts the invocation and returns the typed future. The request
// buffer is not recycled — an abandoned future (Wait timeout) can leave the
// invocation queued past GoCall's lifetime, so the GC reclaims it instead.
func GoCall[Arg, Reply any](s *Stub, method string, arg Arg) *Future[Reply] {
	payload, err := transport.Encode(&arg)
	if err != nil {
		return &Future[Reply]{ac: newCompletedAsync(err)}
	}
	return &Future[Reply]{ac: s.InvokeAsync(method, payload)}
}

// OneWayCall is the typed fire-and-forget counterpart of Call.
func OneWayCall[Arg any](s *Stub, method string, arg Arg) error {
	payload, err := transport.Encode(&arg)
	if err != nil {
		return err
	}
	return s.InvokeOneWay(method, payload)
}
