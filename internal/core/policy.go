package core

import "math"

// PoolMetrics is the observation a scaling policy decides on: what the
// runtime gathered from the elastic object pool over one burst interval.
// The same struct (and the same policy implementations) are used by the
// live runtime and by the deployment simulator in internal/benchsim, so the
// figures of the paper are regenerated with exactly the decision code that
// runs in production.
type PoolMetrics struct {
	// AvgCPU / AvgRAM are utilization percentages averaged across members.
	AvgCPU float64
	AvgRAM float64
	// PoolSize is the current member count; MinPool/MaxPool its bounds.
	PoolSize int
	MinPool  int
	MaxPool  int
	// FineDeltas holds the per-member returns of ChangePoolSize, when the
	// application implements PoolSizer; nil otherwise.
	FineDeltas []int
	// DesiredSize is the Decider's answer (application-level decisions);
	// negative means "no decider".
	DesiredSize int
	// Shed and Expired count invocations the members' admission controllers
	// refused over the burst interval: shed with an overload reply, or
	// dropped because their deadline budget expired in queue. A material
	// refusal rate proves demand exceeded capacity — the overload signal
	// that lets utilization policies scale out before congestion collapse,
	// and the same signal the benchsim deployment simulator feeds its
	// policies. Calls is the number of invocations the members executed
	// over the same interval, the volume the refusals are judged against.
	Shed    int64
	Expired int64
	Calls   int64
}

// overloaded reports whether the interval saw a material rate of
// admission-control refusals. It deliberately demands more than one stray
// refusal: a single client with a too-small call budget trickles a few
// expiries per interval, and treating those as saturation would ratchet
// the pool to MaxPool and veto every scale-down while that client runs.
// The bar is at least one refusal per member AND at least 1% of the
// executed invocation volume (trivially met when no volume was observed).
func (m PoolMetrics) overloaded() bool {
	refused := m.Shed + m.Expired
	if refused == 0 || refused < int64(m.PoolSize) {
		return false
	}
	return refused*100 >= m.Calls
}

// Policy decides how many members to add (positive) or remove (negative)
// given one burst interval's metrics. The returned delta is already clamped
// to the pool's [MinPool, MaxPool] bounds.
type Policy interface {
	Decide(m PoolMetrics) int
	Name() string
}

// clampDelta restricts size+delta to [min, max] and returns the adjusted
// delta.
func clampDelta(delta, size, min, max int) int {
	target := size + delta
	if target < min {
		target = min
	}
	if target > max {
		target = max
	}
	return target - size
}

// ImplicitPolicy is the paper's default (§3.2): add one object when average
// CPU utilization exceeds 90%, remove one when it falls below 60%. Shed or
// expired work is an overriding scale-out trigger: members refusing
// invocations means demand already exceeds capacity, whatever the averaged
// utilization window says (sleep-heavy handlers can shed at low CPU).
type ImplicitPolicy struct{}

var _ Policy = ImplicitPolicy{}

// Name implements Policy.
func (ImplicitPolicy) Name() string { return "implicit" }

// Decide implements Policy.
func (ImplicitPolicy) Decide(m PoolMetrics) int {
	switch {
	case m.overloaded():
		return clampDelta(1, m.PoolSize, m.MinPool, m.MaxPool)
	case m.AvgCPU > 90:
		return clampDelta(1, m.PoolSize, m.MinPool, m.MaxPool)
	case m.AvgCPU < 60:
		return clampDelta(-1, m.PoolSize, m.MinPool, m.MaxPool)
	default:
		return 0
	}
}

// CoarsePolicy implements explicit elasticity with coarse-grained metrics
// (§3.3): user-set CPU and RAM thresholds, interpreted with a logical OR.
// Increments are one object per burst interval, as in the paper's example.
type CoarsePolicy struct {
	CPUIncr, CPUDecr float64
	RAMIncr, RAMDecr float64
}

var _ Policy = CoarsePolicy{}

// Name implements Policy.
func (CoarsePolicy) Name() string { return "coarse" }

// Decide implements Policy.
func (p CoarsePolicy) Decide(m PoolMetrics) int {
	incr := m.overloaded() ||
		(p.CPUIncr > 0 && m.AvgCPU > p.CPUIncr) ||
		(p.RAMIncr > 0 && m.AvgRAM > p.RAMIncr)
	decr := (p.CPUDecr > 0 && m.AvgCPU < p.CPUDecr) &&
		(p.RAMDecr == 0 || m.AvgRAM < p.RAMDecr)
	switch {
	case incr:
		return clampDelta(1, m.PoolSize, m.MinPool, m.MaxPool)
	case decr:
		return clampDelta(-1, m.PoolSize, m.MinPool, m.MaxPool)
	default:
		return 0
	}
}

// FinePolicy implements fine-grained explicit elasticity (§3.3): the runtime
// polls each member's ChangePoolSize and averages the returned values to
// determine how many objects to add or remove. When the application
// overrides ChangePoolSize, CPU/RAM scaling is disabled, so this policy
// ignores utilization entirely.
type FinePolicy struct{}

var _ Policy = FinePolicy{}

// Name implements Policy.
func (FinePolicy) Name() string { return "fine" }

// Decide implements Policy.
func (FinePolicy) Decide(m PoolMetrics) int {
	if len(m.FineDeltas) == 0 {
		return 0
	}
	sum := 0
	for _, d := range m.FineDeltas {
		sum += d
	}
	avg := float64(sum) / float64(len(m.FineDeltas))
	// Round half away from zero so a pool evenly split between +1 and 0
	// still reacts.
	delta := int(math.Round(avg))
	if delta == 0 {
		return 0
	}
	return clampDelta(delta, m.PoolSize, m.MinPool, m.MaxPool)
}

// DeciderPolicy delegates to an application-level Decider that returns the
// desired absolute pool size (§3.3, "Making Application-Level Scaling
// Decisions").
type DeciderPolicy struct{}

var _ Policy = DeciderPolicy{}

// Name implements Policy.
func (DeciderPolicy) Name() string { return "decider" }

// Decide implements Policy.
func (DeciderPolicy) Decide(m PoolMetrics) int {
	if m.DesiredSize < 0 {
		return 0
	}
	return clampDelta(m.DesiredSize-m.PoolSize, m.PoolSize, m.MinPool, m.MaxPool)
}

// policyFor selects the single decision mechanism for a pool, mirroring the
// paper's precedence: a Decider overrides everything; an application
// implementing PoolSizer disables CPU/RAM scaling; explicit thresholds
// override the implicit defaults.
func policyFor(cfg Config, fineGrained bool) Policy {
	switch {
	case cfg.Decider != nil:
		return DeciderPolicy{}
	case fineGrained:
		return FinePolicy{}
	case cfg.CPUIncrThreshold != 90 || cfg.CPUDecrThreshold != 60 ||
		cfg.RAMIncrThreshold != 0 || cfg.RAMDecrThreshold != 0:
		return CoarsePolicy{
			CPUIncr: cfg.CPUIncrThreshold,
			CPUDecr: cfg.CPUDecrThreshold,
			RAMIncr: cfg.RAMIncrThreshold,
			RAMDecr: cfg.RAMDecrThreshold,
		}
	default:
		return ImplicitPolicy{}
	}
}
