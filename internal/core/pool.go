package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/group"
	"elasticrmi/internal/kvstore"
	"elasticrmi/internal/metrics"
	"elasticrmi/internal/route"
	"elasticrmi/internal/transport"
)

// Deps are the substrates a pool runs on: the cluster manager granting
// slices (Mesos in the paper), the shared-state store (HyperDex) and an
// optional registry for naming.
type Deps struct {
	Cluster *cluster.Manager
	// Store is the shared-state surface pool members read and write. Pass
	// the *kvstore.Cluster itself for plain per-call access, or a
	// *kvstore.ClusterSession (Cluster.NewSession) to serve repeated reads
	// from a lease-backed client cache the store invalidates before it
	// acknowledges any conflicting write — same consistency, no round trip
	// on a hit.
	Store    kvstore.Shared
	Registry *RegistryClient
	// StoreCluster, when set (and typically the same object as Store),
	// lets the runtime grow the shared-state store alongside the pool —
	// the paper's "ElasticRMI may add additional nodes to HyperDex as
	// necessary" (§4.2). One store node is kept per StoreNodeRatio members.
	StoreCluster *kvstore.Cluster
	// StoreNodeRatio is the number of pool members per store node; default 8.
	StoreNodeRatio int
}

// ScaleEvent records one elastic scaling action, consumed by tests and the
// benchmark harness (provisioning-interval measurements of Fig. 8).
type ScaleEvent struct {
	At     time.Time
	From   int
	To     int
	Policy string
	// ProvisioningLatency is the time from initiating the resource request
	// to the new member(s) being able to serve; zero for removals.
	ProvisioningLatency time.Duration
	// ForcedDrains counts removed members whose drain timed out with work
	// still in flight: their shutdown may have cut acknowledged responses,
	// forfeiting at-most-once for the affected calls. Zero on clean
	// shrinks and on all grow events.
	ForcedDrains int
}

// Pool is an instantiated elastic class: the elastic object pool plus its
// runtime (sentinel election, monitoring, scaling, load balancing).
type Pool struct {
	cfg     Config
	deps    Deps
	factory Factory
	policy  Policy
	fine    bool

	gm *group.Member // the runtime's group endpoint (view coordinator, epoch source)

	mu      sync.Mutex
	members []*member // sorted by UID; members[0] is the sentinel
	closed  bool

	scaleMu sync.Mutex // serializes grow/shrink/failure handling

	events chan ScaleEvent
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewPool instantiates an elastic class: it requests MinPoolSize slices from
// the cluster, launches one member per granted slice (fewer if the cluster
// cannot grant the minimum, §4.2), elects the sentinel, binds the registry
// name and starts the monitoring/scaling loops.
func NewPool(cfg Config, factory Factory, deps Deps) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, errors.New("core: nil factory")
	}
	if deps.Cluster == nil || deps.Store == nil {
		return nil, errors.New("core: Deps.Cluster and Deps.Store are required")
	}
	cfg = cfg.withDefaults()

	gm, err := group.NewMember(group.Config{
		HeartbeatInterval: 250 * time.Millisecond,
		Clock:             cfg.Clock,
	})
	if err != nil {
		return nil, fmt.Errorf("core: pool group endpoint: %w", err)
	}
	p := &Pool{
		cfg:     cfg,
		deps:    deps,
		factory: factory,
		gm:      gm,
		events:  make(chan ScaleEvent, 64),
		stop:    make(chan struct{}),
	}

	slices, err := deps.Cluster.Acquire(cfg.MinPoolSize)
	if err != nil {
		gm.Close()
		return nil, fmt.Errorf("core: instantiate pool %s: %w", cfg.Name, err)
	}
	for _, s := range slices {
		if _, lerr := p.launchMember(s); lerr != nil {
			p.Close()
			return nil, fmt.Errorf("core: launch member: %w", lerr)
		}
	}
	// The fine-grained mechanism is selected by the application overriding
	// ChangePoolSize (implementing PoolSizer).
	p.mu.Lock()
	if len(p.members) > 0 {
		_, p.fine = p.members[0].obj.(PoolSizer)
	}
	p.mu.Unlock()
	p.policy = policyFor(cfg, p.fine)

	p.refreshView()
	p.rebind()

	p.wg.Add(3)
	go p.scalingLoop()
	go p.failureLoop()
	go p.revocationLoop(deps.Cluster.SubscribeRevoked())
	if !cfg.DisableBroadcast {
		p.wg.Add(1)
		go p.broadcastLoop()
	}
	return p, nil
}

// launchMember creates one member on the given slice. Caller must not hold
// p.mu.
func (p *Pool) launchMember(s *cluster.Slice) (*member, error) {
	uid, err := p.deps.Store.AddInt64("__ermi/"+p.cfg.Name+"/uid", 1)
	if err != nil {
		return nil, fmt.Errorf("allocate uid: %w", err)
	}
	gm, err := group.NewMember(group.Config{Clock: p.cfg.Clock})
	if err != nil {
		return nil, err
	}
	m := &member{
		pool:    p,
		uid:     uid,
		slice:   s,
		gm:      gm,
		meter:   metrics.NewMeter(p.cfg.SliceCPUs, p.cfg.Clock),
		msgStop: make(chan struct{}),
		msgDone: make(chan struct{}),
	}
	owner := fmt.Sprintf("%s/%d", p.cfg.Name, uid)
	ctx := &MemberContext{
		UID:      uid,
		PoolName: p.cfg.Name,
		State:    NewState(p.cfg.Name, owner, p.deps.Store, p.cfg.Clock),
		Clock:    p.cfg.Clock,
		statsFn:  m.cachedStats,
		usageFn:  m.cachedUsage,
		poolSizeFn: func() int {
			return p.Size()
		},
		rosterFn:  m.rosterCopy,
		groupAddr: gm.Addr(),
		peerSendFn: func(to, topic string, payload []byte) error {
			return gm.Send(to, appTopicPrefix+topic, payload)
		},
	}
	m.ctx = ctx
	obj, err := p.factory(ctx)
	if err != nil {
		gm.Close()
		return nil, fmt.Errorf("factory: %w", err)
	}
	m.obj = obj
	if g, ok := obj.(RAMGauge); ok {
		m.meter.SetRAMGauge(g.RAMUsage)
	}
	srv, err := transport.ServeOpts("127.0.0.1:0", m.handle, transport.ServerOptions{
		MaxConcurrent: p.cfg.MaxConcurrentInvocations,
		MaxQueue:      p.cfg.MaxQueuedInvocations,
	})
	if err != nil {
		if c, ok := obj.(Closer); ok {
			_ = c.Close()
		}
		gm.Close()
		return nil, err
	}
	m.srv = srv
	// Every response this skeleton writes piggybacks the member's routing
	// table to requesters carrying an older epoch.
	srv.SetRouteSource(m.currentTable)
	go m.messageLoop()

	p.mu.Lock()
	p.members = append(p.members, m)
	sort.Slice(p.members, func(i, j int) bool { return p.members[i].uid < p.members[j].uid })
	p.mu.Unlock()
	return m, nil
}

// snapshotLocked builds the roster and the epoch-stamped routing table for
// the current membership. weights maps member address to routing weight
// (nil: every member gets route.DefaultWeight). Caller holds p.mu.
func (p *Pool) snapshotLocked(epoch uint64, weights map[string]int32) ([]MemberInfo, route.Table) {
	roster := make([]MemberInfo, 0, len(p.members))
	table := route.Table{Epoch: epoch, Members: make([]route.Member, 0, len(p.members))}
	for _, m := range p.members {
		info := MemberInfo{
			Addr:     m.srv.Addr(),
			Group:    m.gm.Addr(),
			UID:      m.uid,
			Pending:  m.meter.InFlight(),
			Draining: m.draining.Load(),
		}
		roster = append(roster, info)
		w := int32(route.DefaultWeight)
		if weights != nil {
			if ww, ok := weights[info.Addr]; ok {
				w = ww
			}
		}
		table.Members = append(table.Members, route.Member{
			Addr:     info.Addr,
			UID:      info.UID,
			Weight:   w,
			Load:     int32(info.Pending),
			Draining: info.Draining,
		})
	}
	return roster, table
}

// publish pushes roster and table to the given members directly (the
// runtime holds in-process references; group dissemination additionally
// covers observers and is driven by the broadcast loop).
func publish(members []*member, roster []MemberInfo, table route.Table) {
	for _, m := range members {
		m.mu.Lock()
		m.roster = append([]MemberInfo(nil), roster...)
		m.mu.Unlock()
		m.setTable(table)
	}
}

// refreshView stamps a new membership epoch, installs the matching group
// view (runtime endpoint first, so the runtime coordinates view
// dissemination) and pushes the fresh roster plus epoch-stamped routing
// table to all members, so every skeleton immediately corrects stale
// clients on its next reply. The published roster and table are returned
// so callers that must hand the SAME view to additional parties (shrink's
// victims) never mint a second, different table under the same epoch.
func (p *Pool) refreshView() ([]MemberInfo, route.Table) {
	epoch := p.gm.NextEpoch()
	p.mu.Lock()
	addrs := make([]string, 0, len(p.members)+1)
	addrs = append(addrs, p.gm.Addr())
	for _, m := range p.members {
		addrs = append(addrs, m.gm.Addr())
	}
	roster, table := p.snapshotLocked(epoch, nil)
	members := append([]*member(nil), p.members...)
	p.mu.Unlock()

	_ = p.gm.InstallView(group.View{ID: epoch, Members: addrs})
	publish(members, roster, table)
	return roster, table
}

// Epoch returns the pool's current membership epoch.
func (p *Pool) Epoch() uint64 { return p.gm.Epoch() }

// rebind refreshes the registry binding (sentinel first).
func (p *Pool) rebind() {
	if p.deps.Registry == nil {
		return
	}
	eps := p.Endpoints()
	if len(eps) == 0 {
		return
	}
	_ = p.deps.Registry.Bind(p.cfg.Name, eps)
}

// Size returns the current number of members.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members)
}

// Endpoints returns the skeleton addresses, sentinel first.
func (p *Pool) Endpoints() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.members))
	for _, m := range p.members {
		out = append(out, m.srv.Addr())
	}
	return out
}

// Members returns the pool roster, sentinel first.
func (p *Pool) Members() []MemberInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]MemberInfo, 0, len(p.members))
	for _, m := range p.members {
		out = append(out, MemberInfo{
			Addr:     m.srv.Addr(),
			Group:    m.gm.Addr(),
			UID:      m.uid,
			Pending:  m.meter.InFlight(),
			Draining: m.draining.Load(),
		})
	}
	return out
}

// SentinelAddr returns the sentinel's skeleton address ("" if empty).
func (p *Pool) SentinelAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.members) == 0 {
		return ""
	}
	return p.members[0].srv.Addr()
}

// Events streams scaling actions. The channel is buffered; events are
// dropped when nobody drains it.
func (p *Pool) Events() <-chan ScaleEvent { return p.events }

// Policy returns the name of the active scaling policy.
func (p *Pool) Policy() string { return p.policy.Name() }

func (p *Pool) emit(ev ScaleEvent) {
	select {
	case p.events <- ev:
	default:
	}
}

// scalingLoop applies the scaling policy every burst interval (§2.5, §3).
func (p *Pool) scalingLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case <-p.cfg.Clock.After(p.cfg.BurstInterval):
		}
		p.runScalingStep()
	}
}

// runScalingStep gathers one burst interval's metrics, consults the policy
// and applies the decision. Exposed to tests via Step.
func (p *Pool) runScalingStep() {
	p.mu.Lock()
	members := append([]*member(nil), p.members...)
	size := len(p.members)
	p.mu.Unlock()
	if size == 0 {
		return
	}

	var sumCPU, sumRAM float64
	var sumShed, sumExpired, sumCalls int64
	var fineDeltas []int
	for _, m := range members {
		stats, usage := m.rollWindow()
		sumCPU += usage.CPU
		sumRAM += usage.RAM
		sumShed += usage.Shed
		sumExpired += usage.Expired
		for i := range stats {
			sumCalls += stats[i].Calls
		}
		if p.fine {
			if sizer, ok := m.obj.(PoolSizer); ok {
				fineDeltas = append(fineDeltas, sizer.ChangePoolSize())
			}
		}
	}
	pm := PoolMetrics{
		AvgCPU:      sumCPU / float64(len(members)),
		AvgRAM:      sumRAM / float64(len(members)),
		PoolSize:    size,
		MinPool:     p.cfg.MinPoolSize,
		MaxPool:     p.cfg.MaxPoolSize,
		FineDeltas:  fineDeltas,
		DesiredSize: -1,
		Shed:        sumShed,
		Expired:     sumExpired,
		Calls:       sumCalls,
	}
	if p.cfg.Decider != nil {
		pm.DesiredSize = p.cfg.Decider.DesiredPoolSize(p.cfg.Name, size)
	}
	delta := p.policy.Decide(pm)
	if delta == 0 {
		return
	}
	if err := p.Resize(delta); err != nil && !errors.Is(err, cluster.ErrNoCapacity) && !errors.Is(err, ErrPoolClosed) {
		// Mesos-related failures only affect addition/removal until the
		// cluster recovers (§4.4): log-free degrade, retry next interval.
		return
	}
}

// Step runs one scaling evaluation immediately (testing hook).
func (p *Pool) Step() { p.runScalingStep() }

// Resize grows (delta>0) or shrinks (delta<0) the pool by |delta| members,
// clamped to the configured bounds.
func (p *Pool) Resize(delta int) error {
	p.scaleMu.Lock()
	defer p.scaleMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	size := len(p.members)
	p.mu.Unlock()

	delta = clampDelta(delta, size, p.cfg.MinPoolSize, p.cfg.MaxPoolSize)
	if delta == 0 {
		return nil
	}
	if delta > 0 {
		return p.grow(delta, size)
	}
	return p.shrink(-delta, size)
}

func (p *Pool) grow(n, from int) error {
	start := p.cfg.Clock.Now()
	slices, err := p.deps.Cluster.Acquire(n)
	if err != nil {
		return fmt.Errorf("grow pool %s: %w", p.cfg.Name, err)
	}
	added := 0
	for _, s := range slices {
		if _, lerr := p.launchMember(s); lerr != nil {
			_ = p.deps.Cluster.Release(s)
			continue
		}
		added++
	}
	if added == 0 {
		return fmt.Errorf("grow pool %s: no members launched", p.cfg.Name)
	}
	latency := p.cfg.Clock.Since(start)
	p.refreshView()
	p.rebind()
	p.scaleStore()
	p.emit(ScaleEvent{
		At:                  p.cfg.Clock.Now(),
		From:                from,
		To:                  from + added,
		Policy:              p.policy.Name(),
		ProvisioningLatency: latency,
	})
	return nil
}

// scaleStore grows the shared-state store alongside the pool (§4.2): the
// runtime keeps at least one store node per StoreNodeRatio members.
func (p *Pool) scaleStore() {
	if p.deps.StoreCluster == nil {
		return
	}
	ratio := p.deps.StoreNodeRatio
	if ratio <= 0 {
		ratio = 8
	}
	target := 1 + (p.Size()-1)/ratio
	for p.deps.StoreCluster.Nodes() < target {
		if err := p.deps.StoreCluster.AddNode(); err != nil {
			return // degrade: the current nodes keep serving
		}
	}
}

func (p *Pool) shrink(n, from int) error {
	// Remove the highest-UID members; the sentinel (lowest UID) is removed
	// last, never while other members exist.
	p.mu.Lock()
	if len(p.members) == 0 {
		p.mu.Unlock()
		return nil
	}
	if n > len(p.members)-1 {
		n = len(p.members) - 1
	}
	victims := append([]*member(nil), p.members[len(p.members)-n:]...)
	p.members = p.members[:len(p.members)-n]
	p.mu.Unlock()
	if len(victims) == 0 {
		return nil
	}

	// Stamp the shrunken view before draining, and hand the exact same
	// roster and table to the victims too: a stale client that still
	// reaches a draining member is served and corrected by the piggybacked
	// table on that very reply, which no longer lists the victim.
	roster, table := p.refreshView()
	p.rebind()
	for _, v := range victims {
		v.draining.Store(true)
	}
	publish(victims, roster, table)
	forced := 0
	for _, v := range victims {
		if !v.drain(p.cfg.DrainTimeout) {
			forced++
		}
		v.close()
		_ = p.deps.Cluster.Release(v.slice)
	}
	p.emit(ScaleEvent{
		At:           p.cfg.Clock.Now(),
		From:         from,
		To:           from - len(victims),
		Policy:       p.policy.Name(),
		ForcedDrains: forced,
	})
	return nil
}

// broadcastLoop periodically has the sentinel broadcast the pool state —
// number of objects, identities, pending invocations — to all skeletons, and
// issues rebalance plans for overloaded members (§4.3).
func (p *Pool) broadcastLoop() {
	defer p.wg.Done()
	interval := p.cfg.BurstInterval / 2
	if interval > time.Second {
		interval = time.Second
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		select {
		case <-p.stop:
			return
		case <-p.cfg.Clock.After(interval):
		}
		p.broadcastState()
	}
}

// broadcastState performs one pool-state broadcast: the sentinel stamps a
// fresh epoch over the current membership with up-to-date load reports and
// rebalance-derived weights, so power-of-two clients see recent pending
// counts and overloaded members shed new arrivals by weight instead of
// bouncing them through redirects. Exposed to tests via BroadcastNow.
func (p *Pool) broadcastState() {
	p.mu.Lock()
	if p.closed || len(p.members) == 0 {
		p.mu.Unlock()
		return
	}
	sentinel := p.members[0]
	loads := make([]MemberLoad, 0, len(p.members))
	for _, m := range p.members {
		if !m.draining.Load() {
			loads = append(loads, MemberLoad{Addr: m.srv.Addr(), Pending: m.meter.InFlight()})
		}
	}
	p.mu.Unlock()

	// The sentinel's bin-packing plan (§4.3) becomes client-visible weight:
	// a member told to shed fraction f of its arrivals is weighted down to
	// (1-f) of the default share.
	var weights map[string]int32
	if plans := PlanRebalance(loads, 2.0); len(plans) > 0 {
		weights = make(map[string]int32, len(plans))
		for _, plan := range plans {
			w := int32((1 - plan.Fraction) * route.DefaultWeight)
			if w < 0 {
				w = 0
			}
			weights[plan.From] = w
		}
	}

	epoch := p.gm.NextEpoch()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	roster, table := p.snapshotLocked(epoch, weights)
	members := append([]*member(nil), p.members...)
	p.mu.Unlock()

	publish(members, roster, table)
	if payload, err := transport.Encode(poolStateMsg{Table: table, Members: roster}); err == nil {
		_ = sentinel.gm.Broadcast(topicPoolState, payload)
	}
}

// BroadcastNow triggers one immediate pool-state broadcast (testing hook).
func (p *Pool) BroadcastNow() { p.broadcastState() }

// failureLoop watches heartbeat failures from the runtime's group endpoint
// and recovers: failed members are removed, their slices released, the
// sentinel re-elected if needed (§4.4), and the pool regrown to the minimum.
func (p *Pool) failureLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case addr := <-p.gm.Failures():
			p.handleFailure(addr)
		}
	}
}

// revocationLoop reacts to cluster slice revocations (node failures in the
// resource manager): the member on a revoked slice is gone with its node.
func (p *Pool) revocationLoop(revoked <-chan *cluster.Slice) {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case s := <-revoked:
			p.mu.Lock()
			var addr string
			for _, m := range p.members {
				if m.slice.ID == s.ID {
					addr = m.gm.Addr()
					break
				}
			}
			p.mu.Unlock()
			if addr != "" {
				p.handleFailure(addr)
			}
		}
	}
}

func (p *Pool) handleFailure(groupAddr string) {
	p.scaleMu.Lock()
	defer p.scaleMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	idx := -1
	for i, m := range p.members {
		if m.gm.Addr() == groupAddr {
			idx = i
			break
		}
	}
	if idx < 0 {
		p.mu.Unlock()
		return
	}
	failed := p.members[idx]
	wasSentinel := idx == 0
	p.members = append(p.members[:idx], p.members[idx+1:]...)
	size := len(p.members)
	p.mu.Unlock()

	failed.kill()
	_ = p.deps.Cluster.Release(failed.slice)
	// Sentinel failure triggers the election: members are kept sorted by
	// UID, so the new sentinel is simply the lowest surviving UID.
	_ = wasSentinel
	p.refreshView()
	p.rebind()
	p.emit(ScaleEvent{At: p.cfg.Clock.Now(), From: size + 1, To: size, Policy: "failure"})

	if size < p.cfg.MinPoolSize {
		if slices, err := p.deps.Cluster.Acquire(p.cfg.MinPoolSize - size); err == nil {
			for _, s := range slices {
				if _, lerr := p.launchMember(s); lerr != nil {
					_ = p.deps.Cluster.Release(s)
				}
			}
			p.refreshView()
			p.rebind()
		}
	}
}

// KillMember abruptly terminates the member with the given UID (failure
// injection for tests). Returns false if no such member exists.
func (p *Pool) KillMember(uid int64) bool {
	p.mu.Lock()
	var target *member
	for _, m := range p.members {
		if m.uid == uid {
			target = m
			break
		}
	}
	p.mu.Unlock()
	if target == nil {
		return false
	}
	target.kill()
	return true
}

// Close drains and shuts down the pool, releasing all slices and unbinding
// the registry name.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	members := append([]*member(nil), p.members...)
	p.members = nil
	p.mu.Unlock()

	close(p.stop)
	p.wg.Wait()

	for _, m := range members {
		m.drain(time.Second)
		m.close()
		_ = p.deps.Cluster.Release(m.slice)
	}
	if p.deps.Registry != nil {
		_ = p.deps.Registry.Unbind(p.cfg.Name)
	}
	return p.gm.Close()
}
