package core

import (
	"errors"
	"testing"
	"time"

	"elasticrmi/internal/transport"
)

func TestStubValidation(t *testing.T) {
	if _, err := NewStub("", []string{"a:1"}); err == nil {
		t.Fatal("accepted empty name")
	}
	if _, err := NewStub("x", nil); err == nil {
		t.Fatal("accepted empty endpoints")
	}
}

// TestStubSurvivesDeadSeed: a stub seeded with one dead endpoint plus one
// live member must fail over and serve.
func TestStubSurvivesDeadSeed(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "deadseed", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	live := pool.Endpoints()[1]
	stub, err := NewStub("deadseed", []string{"127.0.0.1:1", live})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 3})
	if err != nil {
		t.Fatalf("invoke with dead seed: %v", err)
	}
	if rep.Total != 3 {
		t.Fatalf("total = %d", rep.Total)
	}
	// The dead endpoint is pruned from the member list.
	for _, m := range stub.Members() {
		if m == "127.0.0.1:1" {
			t.Fatal("dead endpoint still in member list")
		}
	}
}

// TestStubAllDeadPropagates: when every member is unreachable the error
// propagates to the application (§4.3: "If all attempts to communicate with
// the elastic object pool fail, the exception is propagated").
func TestStubAllDeadPropagates(t *testing.T) {
	stub, err := NewStub("ghost", []string{"127.0.0.1:1", "127.0.0.1:2"})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	_, err = stub.Invoke("M", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

// TestStubReusedAfterPoolRestart: after the pool is closed and re-created
// (new ports), a stale stub recovers via registry-driven re-creation; the
// stale one itself reports unavailable.
func TestStubStaleAfterPoolClose(t *testing.T) {
	env := newTestEnv(t, 8)
	pool, err := NewPool(Config{
		Name: "restart", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, newCounterFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() }) // idempotent; the test closes it early
	stub, err := LookupStub("restart", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	pool.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stale stub err = %v, want ErrUnavailable", err)
	}
	// The registry binding is gone too.
	if _, err := env.regCli.Lookup("restart"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("lookup after close = %v, want ErrNotBound", err)
	}
}

// TestStubAppErrorsNotRetried: application errors must reach the caller
// exactly once, not be retried on other members.
func TestStubAppErrorsNotRetried(t *testing.T) {
	env := newTestEnv(t, 8)
	calls := 0
	factory := func(ctx *MemberContext) (Object, error) {
		mux := NewMux()
		Handle(mux, "Fail", func(struct{}) (struct{}, error) {
			calls++
			return struct{}{}, errors.New("app boom")
		})
		return mux, nil
	}
	pool, err := NewPool(Config{
		Name: "apperr", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() })
	stub, err := LookupStub("apperr", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	_, err = Call[struct{}, struct{}](stub, "Fail", struct{}{})
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want application error", err)
	}
	if calls != 1 {
		t.Fatalf("method executed %d times, want exactly 1 (no retry of app errors)", calls)
	}
}

// TestStubOversizePayloadNotRetried: a payload too large to frame is a
// caller-side bug — the invocation must fail with ErrFrameTooLarge without
// dropping healthy members or retrying the unframeable request elsewhere.
func TestStubOversizePayloadNotRetried(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "bigpayload", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := NewStub("bigpayload", pool.Endpoints())
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	before := len(stub.Members())

	_, err = stub.Invoke("Add", make([]byte, transport.MaxFrame+1))
	if !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if got := len(stub.Members()); got != before {
		t.Fatalf("members = %d after oversize call, want %d (no member dropped)", got, before)
	}
	// The same stub and connections still serve normal invocations.
	rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 5})
	if err != nil {
		t.Fatalf("call after oversize payload: %v", err)
	}
	if rep.Total != 5 {
		t.Fatalf("total = %d", rep.Total)
	}
}

// TestStubRecoversAfterTotalExclusion: a transient outage can locally
// exclude every member; exclusions only clear when a fresh table arrives,
// and a fresh table only arrives on a reply — so the stub must keep dialing
// excluded members rather than going permanently dark against a pool that
// has recovered.
func TestStubRecoversAfterTotalExclusion(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "blackout", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := NewStub("blackout", pool.Endpoints())
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Simulate the aftermath of a total transient partition.
	for _, addr := range stub.Members() {
		stub.routes.Exclude(addr)
	}
	if got := len(stub.Members()); got != 0 {
		t.Fatalf("members after blackout = %d, want 0", got)
	}
	rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1})
	if err != nil {
		t.Fatalf("invoke after blackout: %v (stub stayed dark against a healthy pool)", err)
	}
	if rep.Total != 2 {
		t.Fatalf("total = %d, want 2", rep.Total)
	}
	if got := len(stub.Members()); got == 0 {
		t.Fatal("exclusions not cleared by the piggybacked table")
	}
}
