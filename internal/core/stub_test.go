package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/transport"
)

func TestStubValidation(t *testing.T) {
	if _, err := NewStub("", []string{"a:1"}); err == nil {
		t.Fatal("accepted empty name")
	}
	if _, err := NewStub("x", nil); err == nil {
		t.Fatal("accepted empty endpoints")
	}
}

// TestStubSurvivesDeadSeed: a stub seeded with one dead endpoint plus one
// live member must fail over and serve.
func TestStubSurvivesDeadSeed(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "deadseed", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	live := pool.Endpoints()[1]
	stub, err := NewStub("deadseed", []string{"127.0.0.1:1", live})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 3})
	if err != nil {
		t.Fatalf("invoke with dead seed: %v", err)
	}
	if rep.Total != 3 {
		t.Fatalf("total = %d", rep.Total)
	}
	// The dead endpoint is pruned from the member list.
	for _, m := range stub.Members() {
		if m == "127.0.0.1:1" {
			t.Fatal("dead endpoint still in member list")
		}
	}
}

// TestStubAllDeadPropagates: when every member is unreachable the error
// propagates to the application (§4.3: "If all attempts to communicate with
// the elastic object pool fail, the exception is propagated").
func TestStubAllDeadPropagates(t *testing.T) {
	stub, err := NewStub("ghost", []string{"127.0.0.1:1", "127.0.0.1:2"})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	_, err = stub.Invoke("M", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

// TestStubReusedAfterPoolRestart: after the pool is closed and re-created
// (new ports), a stale stub recovers via registry-driven re-creation; the
// stale one itself reports unavailable.
func TestStubStaleAfterPoolClose(t *testing.T) {
	env := newTestEnv(t, 8)
	pool, err := NewPool(Config{
		Name: "restart", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, newCounterFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() }) // idempotent; the test closes it early
	stub, err := LookupStub("restart", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	pool.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stale stub err = %v, want ErrUnavailable", err)
	}
	// The registry binding is gone too.
	if _, err := env.regCli.Lookup("restart"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("lookup after close = %v, want ErrNotBound", err)
	}
}

// TestStubAppErrorsNotRetried: application errors must reach the caller
// exactly once, not be retried on other members.
func TestStubAppErrorsNotRetried(t *testing.T) {
	env := newTestEnv(t, 8)
	calls := 0
	factory := func(ctx *MemberContext) (Object, error) {
		mux := NewMux()
		Handle(mux, "Fail", func(struct{}) (struct{}, error) {
			calls++
			return struct{}{}, errors.New("app boom")
		})
		return mux, nil
	}
	pool, err := NewPool(Config{
		Name: "apperr", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() })
	stub, err := LookupStub("apperr", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	_, err = Call[struct{}, struct{}](stub, "Fail", struct{}{})
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want application error", err)
	}
	if calls != 1 {
		t.Fatalf("method executed %d times, want exactly 1 (no retry of app errors)", calls)
	}
}

// TestStubOversizePayloadNotRetried: a payload too large to frame is a
// caller-side bug — the invocation must fail with ErrFrameTooLarge without
// dropping healthy members or retrying the unframeable request elsewhere.
func TestStubOversizePayloadNotRetried(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "bigpayload", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := NewStub("bigpayload", pool.Endpoints())
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	before := len(stub.Members())

	_, err = stub.Invoke("Add", make([]byte, transport.MaxFrame+1))
	if !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if got := len(stub.Members()); got != before {
		t.Fatalf("members = %d after oversize call, want %d (no member dropped)", got, before)
	}
	// The same stub and connections still serve normal invocations.
	rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 5})
	if err != nil {
		t.Fatalf("call after oversize payload: %v", err)
	}
	if rep.Total != 5 {
		t.Fatalf("total = %d", rep.Total)
	}
}

// napFactory builds a pool object with a fast Echo and sleep-for-the-given-
// duration Nap method, for timeout-behaviour tests.
func napFactory() Factory {
	return func(ctx *MemberContext) (Object, error) {
		mux := NewMux()
		Handle(mux, "Echo", func(n int64) (int64, error) { return n, nil })
		Handle(mux, "Nap", func(d time.Duration) (struct{}, error) {
			time.Sleep(d)
			return struct{}{}, nil
		})
		return mux, nil
	}
}

// TestTimeoutKeepsConnectionAndMember is the regression test for the
// timeout-kills-connection bug: a timed-out call used to fall into the
// generic transport-failure branch, Drop the shared cached connection —
// failing every unrelated call multiplexed on it — and Exclude a member
// that was merely slow. Two concurrent keyed calls share one cached
// connection to the same member; the slow one times out, the fast one must
// still succeed and the member must stay routable.
func TestTimeoutKeepsConnectionAndMember(t *testing.T) {
	env := newTestEnv(t, 8)
	pool, err := NewPool(Config{
		Name: "slowpoke", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true, DrainTimeout: time.Second,
	}, napFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() })
	stub, err := NewStub("slowpoke", pool.Endpoints(), WithCallTimeout(800*time.Millisecond))
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	// Prime the routing table (and learn the member set) with one call.
	if _, err := Call[int64, int64](stub, "Echo", 1); err != nil {
		t.Fatalf("prime: %v", err)
	}
	members := len(stub.Members())

	var wg sync.WaitGroup
	wg.Add(2)
	var slowErr, fastErr error
	go func() {
		defer wg.Done()
		// Same key => same member => same cached connection as the fast call.
		_, slowErr = CallKeyed[time.Duration, struct{}](stub, "Nap", "k", 1500*time.Millisecond)
	}()
	go func() {
		defer wg.Done()
		time.Sleep(400 * time.Millisecond) // in flight when the slow call times out at ~800ms
		_, fastErr = CallKeyed[time.Duration, struct{}](stub, "Nap", "k", 600*time.Millisecond)
	}()
	wg.Wait()
	if slowErr == nil || !errors.Is(slowErr, ErrUnavailable) {
		t.Fatalf("slow call err = %v, want timeout-driven ErrUnavailable", slowErr)
	}
	if fastErr != nil {
		t.Fatalf("fast call on the shared connection failed: %v (timeout must not kill the multiplexed conn)", fastErr)
	}
	if got := len(stub.Members()); got != members {
		t.Fatalf("members after timeout = %d, want %d (slow member must not be excluded)", got, members)
	}
}

// TestInvokeWallTimeBoundedByBudget is the regression test for the
// unbounded-retry bug: the failover loop used to grant every attempt a
// fresh full timeout, so one Invoke could block for (2n+2) x timeout. The
// budget is now shared across attempts: total wall time stays around one
// timeout even when every member is slow.
func TestInvokeWallTimeBoundedByBudget(t *testing.T) {
	env := newTestEnv(t, 8)
	pool, err := NewPool(Config{
		Name: "molasses", MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour, DisableBroadcast: true, DrainTimeout: time.Second,
	}, napFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() })
	stub, err := NewStub("molasses", pool.Endpoints(), WithCallTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()

	start := time.Now()
	_, err = Call[time.Duration, struct{}](stub, "Nap", 2500*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("invoke against an all-slow pool succeeded")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// One 500ms budget shared across every attempt, plus scheduling slack —
	// nowhere near the (2n+2) x 500ms = 4s the per-attempt bug allowed.
	if elapsed > 2*time.Second {
		t.Fatalf("invoke blocked %v, want ~500ms (budget must span all failover attempts)", elapsed)
	}
}

// TestStubRecoversAfterTotalExclusion: a transient outage can locally
// exclude every member; exclusions only clear when a fresh table arrives,
// and a fresh table only arrives on a reply — so the stub must keep dialing
// excluded members rather than going permanently dark against a pool that
// has recovered.
func TestStubRecoversAfterTotalExclusion(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "blackout", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := NewStub("blackout", pool.Endpoints())
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	// Simulate the aftermath of a total transient partition.
	for _, addr := range stub.Members() {
		stub.routes.Exclude(addr)
	}
	if got := len(stub.Members()); got != 0 {
		t.Fatalf("members after blackout = %d, want 0", got)
	}
	rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1})
	if err != nil {
		t.Fatalf("invoke after blackout: %v (stub stayed dark against a healthy pool)", err)
	}
	if rep.Total != 2 {
		t.Fatalf("total = %d, want 2", rep.Total)
	}
	if got := len(stub.Members()); got == 0 {
		t.Fatal("exclusions not cleared by the piggybacked table")
	}
}
