package core

import (
	"testing"
	"time"
)

// TestNodeFailureRevokesMembers: failing a cluster node revokes its slices;
// the pool must notice, drop the affected member and regrow to the minimum.
func TestNodeFailureRevokesMembers(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "revoke", MinPoolSize: 3, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	members := pool.Members()
	if len(members) != 3 {
		t.Fatalf("pool size = %d", len(members))
	}
	// Find the node hosting the last member's slice and fail it. Slices in
	// newTestEnv are one per node, so exactly one member dies.
	victimUID := members[len(members)-1].UID
	var victimNode string
	// The pool does not expose slice→node mapping; fail nodes until the
	// member count drops below 3, then expect recovery.
	for n := 0; n < 8; n++ {
		env.cluster.FailNode(nodeName(n))
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			ms := pool.Members()
			alive := false
			for _, m := range ms {
				if m.UID == victimUID {
					alive = true
				}
			}
			if !alive {
				victimNode = nodeName(n)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if victimNode != "" {
			break
		}
	}
	if victimNode == "" {
		t.Fatal("no node failure removed the victim member")
	}
	// Pool regrows to the minimum on surviving nodes.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pool.Size() < 3 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := pool.Size(); got < 3 {
		t.Fatalf("pool size after node failure = %d, want regrown to 3", got)
	}
}

func nodeName(n int) string {
	return "node-00" + string(rune('0'+n))
}

// TestStoreScalesWithPool: with StoreCluster wired, growing the pool past
// the ratio adds store nodes ("ElasticRMI may add additional nodes to
// HyperDex as necessary") and data stays readable through migration.
func TestStoreScalesWithPool(t *testing.T) {
	env := newTestEnv(t, 12)
	deps := env.deps()
	deps.StoreCluster = env.store
	deps.StoreNodeRatio = 3
	pool, err := NewPool(Config{
		Name: "storescale", MinPoolSize: 2, MaxPoolSize: 10,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, newCounterFactory(), deps)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()

	stub, err := LookupStub("storescale", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	for i := 0; i < 20; i++ {
		if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if env.store.Nodes() != 1 {
		t.Fatalf("store nodes = %d before growth, want 1", env.store.Nodes())
	}
	if err := pool.Resize(5); err != nil { // 7 members -> ceil ratio -> 3 nodes
		t.Fatalf("Resize: %v", err)
	}
	if got := env.store.Nodes(); got != 3 {
		t.Fatalf("store nodes = %d after growth to 7 members, want 3", got)
	}
	// Shared state survived the shard migrations.
	rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
	if err != nil || rep.Total != 20 {
		t.Fatalf("total after store scaling = %d, %v, want 20", rep.Total, err)
	}
}

// TestBroadcastDisseminatesRoster: after a scale-up, the periodic pool-state
// broadcast (sentinel -> skeletons over the group layer) refreshes every
// member's roster so discovery answers include the new members.
func TestBroadcastDisseminatesRoster(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "bcast", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, // no automatic scaling
	})
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	pool.BroadcastNow()
	time.Sleep(100 * time.Millisecond)

	// A stub seeded with ONE member must learn all four from the routing
	// table piggybacked on its first reply.
	stub, err := NewStub("bcast", []string{pool.Endpoints()[3]})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	if err := stub.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := len(stub.Members()); got != 4 {
		t.Fatalf("discovered %d members, want 4", got)
	}
}

// TestRebalancePlansReachSkeletons: an artificial overload triggers the
// sentinel's first-fit plan and the overloaded skeleton starts redirecting
// a fraction of arrivals, which stubs follow transparently.
func TestRebalancePlansReachSkeletons(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "replan", MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour,
	})
	// Simulate pending-invocation imbalance by parking slow calls on one
	// member: counterObject has no slow path, so instead feed the plan
	// directly through the broadcast machinery by hammering invocations at
	// one member while broadcasting. The observable contract: invocations
	// via the stub keep succeeding while plans circulate.
	pool.BroadcastNow()
	stub, err := LookupStub("replan", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	for i := 0; i < 30; i++ {
		if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
			t.Fatalf("Add under rebalance: %v", err)
		}
		if i%10 == 0 {
			pool.BroadcastNow()
		}
	}
	rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
	if err != nil || rep.Total != 30 {
		t.Fatalf("total = %d, %v", rep.Total, err)
	}
}

// TestStubRandomBalancing exercises the random load-balancing option.
func TestStubRandomBalancing(t *testing.T) {
	env := newTestEnv(t, 8)
	newTestPool(t, env, Config{
		Name: "rand", MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("rand", env.regCli, WithRandomBalancing(), WithCallTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	seen := make(map[int64]int)
	for i := 0; i < 60; i++ {
		uid, err := Call[struct{}, int64](stub, "WhoAmI", struct{}{})
		if err != nil {
			t.Fatalf("WhoAmI: %v", err)
		}
		seen[uid]++
	}
	if len(seen) < 2 {
		t.Fatalf("random balancing hit %d members over 60 calls", len(seen))
	}
}

// TestPoolUIDsMonotonicAcrossRestarts: UIDs come from the shared store, so
// a second pool instantiation of the same class continues the sequence (the
// "monotonically increasing unique identifiers" of §4.3).
func TestPoolUIDsMonotonicAcrossRestarts(t *testing.T) {
	env := newTestEnv(t, 8)
	pool1, err := NewPool(Config{
		Name: "uids", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, newCounterFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	var maxUID int64
	for _, m := range pool1.Members() {
		if m.UID > maxUID {
			maxUID = m.UID
		}
	}
	pool1.Close()

	pool2, err := NewPool(Config{
		Name: "uids", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, newCounterFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool #2: %v", err)
	}
	defer pool2.Close()
	for _, m := range pool2.Members() {
		if m.UID <= maxUID {
			t.Fatalf("uid %d reused after restart (max was %d)", m.UID, maxUID)
		}
	}
}

// TestSharedStateVisibleToFreshMember: a member added by scaling reads the
// fields written before it existed (shared state lives outside the pool).
func TestSharedStateVisibleToFreshMember(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "fresh", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("fresh", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 42}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	// Refresh so the stub knows all four members, then make every member
	// answer at least once.
	if err := stub.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	for i := 0; i < 8; i++ {
		rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
		if err != nil || rep.Total != 42 {
			t.Fatalf("Get via member %d = %d, %v", i, rep.Total, err)
		}
	}
}
