package core

import (
	"testing"
	"time"

	"elasticrmi/internal/transport"
)

func TestDeciderFuncAdapter(t *testing.T) {
	var gotName string
	var gotCur int
	d := DeciderFunc(func(name string, cur int) int {
		gotName, gotCur = name, cur
		return 7
	})
	if got := d.DesiredPoolSize("p", 3); got != 7 {
		t.Fatalf("desired = %d", got)
	}
	if gotName != "p" || gotCur != 3 {
		t.Fatalf("args = %s/%d", gotName, gotCur)
	}
}

func TestProportionalDecider(t *testing.T) {
	d := NewProportionalDecider(map[string]float64{
		"backend": 0.5,
		"cache":   0.25,
	}, 2)
	// Before any observation: minimum.
	if got := d.DesiredPoolSize("backend", 9); got != 2 {
		t.Fatalf("backend before observe = %d, want min 2", got)
	}
	d.Observe(12)
	if got := d.DesiredPoolSize("backend", 2); got != 6 {
		t.Fatalf("backend = %d, want 6 (0.5 x 12)", got)
	}
	if got := d.DesiredPoolSize("cache", 2); got != 3 {
		t.Fatalf("cache = %d, want 3 (0.25 x 12)", got)
	}
	// Unmanaged pool keeps its size.
	if got := d.DesiredPoolSize("other", 5); got != 5 {
		t.Fatalf("unmanaged = %d, want 5", got)
	}
	// Fractions round up.
	d.Observe(13)
	if got := d.DesiredPoolSize("cache", 2); got != 4 {
		t.Fatalf("cache = %d, want ceil(3.25) = 4", got)
	}
}

// TestProportionalDeciderDrivesTwoPools: a two-tier application where the
// decider sizes the backend tier as half the observed front-tier demand —
// the application-level scaling of §3.3 spanning multiple elastic pools.
func TestProportionalDeciderDrivesTwoPools(t *testing.T) {
	env := newTestEnv(t, 16)
	decider := NewProportionalDecider(map[string]float64{"tier-b": 0.5}, 2)

	poolA := newTestPool(t, env, Config{
		Name: "tier-a", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	poolB, err := NewPool(Config{
		Name: "tier-b", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Hour, DisableBroadcast: true,
		Decider: decider,
	}, newCounterFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer poolB.Close()

	// Front tier grows; the monitoring component reports its demand.
	if err := poolA.Resize(4); err != nil {
		t.Fatalf("Resize A: %v", err)
	}
	decider.Observe(float64(poolA.Size() * 2)) // demand proxy: 12
	poolB.Step()
	if got := poolB.Size(); got != 6 {
		t.Fatalf("tier-b = %d, want 6 (decider)", got)
	}
	// Demand drops; backend follows.
	decider.Observe(4)
	poolB.Step()
	if got := poolB.Size(); got != 2 {
		t.Fatalf("tier-b after drop = %d, want 2", got)
	}
}

// TestStatsMethodExposesMemberWorkload: the __stats admin surface reports
// the last completed burst interval.
func TestStatsMethodExposesMemberWorkload(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "statpool", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("statpool", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	for i := 0; i < 10; i++ {
		if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	pool.Step() // roll the metrics window so stats are cached

	c, err := transport.Dial(pool.SentinelAddr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	out, err := c.Call("statpool", MethodStats, nil, 5*time.Second)
	if err != nil {
		t.Fatalf("__stats: %v", err)
	}
	var rep StatsReply
	if err := transport.Decode(out, &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Pool != "statpool" || rep.UID == 0 {
		t.Fatalf("stats = %+v", rep)
	}
	foundAdd := false
	for _, m := range rep.Methods {
		if m.Method == "Add" && m.Calls > 0 {
			foundAdd = true
		}
	}
	if !foundAdd {
		t.Fatalf("stats missing Add method activity: %+v", rep.Methods)
	}
}
