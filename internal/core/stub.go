package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"elasticrmi/internal/route"
	"elasticrmi/internal/transport"
)

// Stub is the client's local representative of an elastic object pool
// (§2.3). To the client application the pool is a single remote object; the
// stub holds an epoch-versioned routing table (internal/route), picks a
// member per call — round-robin, power-of-two-choices over the piggybacked
// load reports, or consistent-hash key affinity — and fails invocations
// over to other members. Stale tables correct themselves in-band: every
// request carries the stub's epoch and any reply from a member holding a
// newer table piggybacks the update, so a scale event converges within one
// reply round-trip with no redirect bouncing and no sentinel hot spot. Only
// when all attempts to communicate with the pool fail is the error
// propagated to the application.
type Stub struct {
	name     string
	timeout  time.Duration
	strategy route.Strategy
	batch    transport.BatchOptions // zero value: batching disabled

	// routes is the epoch-versioned routing view, advanced exclusively by
	// piggybacked updates arriving on this stub's connections.
	routes *route.State

	// conns dials and caches one client per member outside any stub lock,
	// with a per-address singleflight guard: a slow or unreachable member
	// stalls only the callers that picked it, never the whole stub. Every
	// client it dials stamps requests with the stub's epoch and feeds
	// route updates back into routes.
	conns *transport.ConnCache

	// pendingN counts asynchronous invocations started but not yet
	// completed, so callers (and scaling policies polling Pending) can see
	// queued async work that has not reached a member's meter yet.
	pendingN atomic.Int64

	// staleRetries counts failover attempts after the first pick of an
	// invocation — the cost of acting on a stale or degraded view. Churn
	// tests assert this stays bounded.
	staleRetries atomic.Uint64

	closed atomic.Bool
}

// StubOption customizes stub behaviour.
type StubOption func(*Stub)

// WithRandomBalancing selects uniform random instead of round-robin member
// choice.
func WithRandomBalancing() StubOption {
	return func(s *Stub) { s.strategy = route.Random }
}

// WithPowerOfTwoBalancing selects power-of-two-choices member choice: two
// random members are sampled per call and the one with the lower load wins,
// where load combines the pool's piggybacked pending reports with this
// stub's own in-flight counts. Under skewed or bursty load it avoids hot
// members that round-robin keeps feeding.
func WithPowerOfTwoBalancing() StubOption {
	return func(s *Stub) { s.strategy = route.PowerOfTwo }
}

// WithCallTimeout sets the per-invocation deadline budget: the total time
// one Invoke may spend across every failover attempt, not a fresh allowance
// per attempt. Each attempt is stamped with the remaining budget on the
// wire, so members drop the work unexecuted once the caller is gone.
// Default 10s; d <= 0 disables the deadline.
func WithCallTimeout(d time.Duration) StubOption {
	return func(s *Stub) { s.timeout = d }
}

// WithBatching coalesces concurrent invocations destined for the same
// member into batch frames, waiting at most maxDelay for companions (the
// adaptive flusher never delays sparse traffic; see transport.BatchOptions).
// Worth enabling for pipelined async workloads; plain request/response
// callers pay nothing when traffic is sparse.
func WithBatching(maxDelay time.Duration) StubOption {
	return func(s *Stub) { s.batch = transport.BatchOptions{MaxDelay: maxDelay} }
}

// NewStub creates a stub for the elastic class name from seed endpoints
// (typically the registry binding, sentinel first). The seed is an
// epoch-zero table; the first reply from any member piggybacks the pool's
// real routing table and supersedes it.
func NewStub(name string, endpoints []string, opts ...StubOption) (*Stub, error) {
	if name == "" {
		return nil, errors.New("core: stub needs a pool name")
	}
	if len(endpoints) == 0 {
		return nil, errors.New("core: stub needs at least one endpoint")
	}
	s := &Stub{
		name:    name,
		timeout: 10 * time.Second,
		routes:  route.NewState(route.Seed(endpoints)),
	}
	for _, o := range opts {
		o(s)
	}
	// The cache is built after options so WithBatching applies to every
	// member connection it dials.
	s.conns = transport.NewConnCacheOpts(transport.DialOptions{
		Timeout:       2 * time.Second,
		Batch:         s.batch,
		Epoch:         s.routes.Epoch,
		OnRouteUpdate: func(t route.Table) { s.routes.Advance(t) },
	})
	return s, nil
}

// LookupStub resolves name through the registry and returns a stub.
func LookupStub(name string, reg *RegistryClient, opts ...StubOption) (*Stub, error) {
	eps, err := reg.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("core: lookup %s: %w", name, err)
	}
	return NewStub(name, eps, opts...)
}

// Members returns the member addresses the stub currently considers
// routable (draining and locally unreachable members excluded).
func (s *Stub) Members() []string {
	return s.routes.Addrs()
}

// RouteEpoch returns the epoch of the stub's current routing table (0 =
// still on the bootstrap seed).
func (s *Stub) RouteEpoch() uint64 { return s.routes.Epoch() }

// RouteAdvances returns how many piggybacked table updates this stub has
// installed.
func (s *Stub) RouteAdvances() uint64 { return s.routes.Advances() }

// StaleRetries returns how many failover attempts the stub has made beyond
// the first pick of each invocation — the observable cost of view
// staleness.
func (s *Stub) StaleRetries() uint64 { return s.staleRetries.Load() }

// Refresh proactively synchronizes the stub's routing table by pinging the
// pool: if the stub is stale, the reply piggybacks the current table like
// any other reply would. Ordinary invocations self-correct the same way —
// Refresh just gives tests and interactive tools a deterministic sync
// point without invoking an application method.
func (s *Stub) Refresh() error {
	_, err := s.Invoke(MethodPing, nil)
	return err
}

// pickFor chooses the member for one attempt: the consistent-hash owner
// when an affinity key is present, the stub's strategy otherwise. When
// every member is locally excluded it falls back to picking among them
// anyway — one of those dials succeeding is the only way a reply (and with
// it a fresh table that clears the exclusions) can ever arrive after a
// transient total outage.
func (s *Stub) pickFor(key string) (string, bool) {
	if key != "" {
		if addr, ok := s.routes.PickKeyed(key); ok {
			return addr, ok
		}
	} else if addr, ok := s.routes.Pick(s.strategy); ok {
		return addr, ok
	}
	return s.routes.PickAny()
}

func (s *Stub) conn(addr string) (*transport.Client, error) {
	c, err := s.conns.Get(addr)
	if errors.Is(err, transport.ErrClosed) {
		return nil, ErrPoolClosed
	}
	return c, err
}

// Invoke executes one remote method invocation against the pool, balanced
// by the stub's strategy. Failed members are excluded and retried on
// others; the error is propagated only if all attempts to communicate with
// the pool fail.
func (s *Stub) Invoke(method string, payload []byte) ([]byte, error) {
	return s.invoke(method, "", payload)
}

// InvokeKeyed executes one remote method invocation routed by key
// affinity: all invocations carrying the same key land on the key's
// consistent-hash owner (every stub holding the same table agrees on it),
// so member-local state — caches, session data — stays hot. When the owner
// is draining or unreachable the key fails over to the next member
// clockwise on the ring and snaps back on the next epoch.
func (s *Stub) InvokeKeyed(method, key string, payload []byte) ([]byte, error) {
	return s.invoke(method, key, payload)
}

// invocationDeadline anchors the stub's per-invocation budget at the wall
// clock (zero time = no deadline).
func (s *Stub) invocationDeadline() time.Time {
	if s.timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.timeout)
}

func (s *Stub) invoke(method, key string, payload []byte) ([]byte, error) {
	return s.invokeDeadline(method, key, payload, s.invocationDeadline())
}

// invokeDeadline runs the failover loop under one shared deadline: every
// attempt is granted only what remains of the invocation's budget (and
// stamps that remainder on the wire), so the worst case is bounded by the
// budget itself, never by attempts × timeout.
func (s *Stub) invokeDeadline(method, key string, payload []byte, deadline time.Time) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrPoolClosed
	}
	var lastErr error
	// Bound the failover loop: each iteration either returns, or excludes
	// the picked member so it cannot be picked again until a newer epoch
	// arrives. The slack beyond the member count absorbs an epoch advance
	// (which clears exclusions) landing mid-invocation.
	attempts := 2*s.routes.Len() + 2
	for i := 0; i < attempts; i++ {
		if s.closed.Load() {
			return nil, ErrPoolClosed
		}
		remaining := time.Duration(0) // 0 = unbounded
		if !deadline.IsZero() {
			if remaining = time.Until(deadline); remaining <= 0 {
				if lastErr == nil {
					lastErr = transport.ErrTimeout
				}
				break
			}
		}
		addr, ok := s.pickFor(key)
		if !ok {
			break
		}
		if i > 0 {
			s.staleRetries.Add(1)
		}
		c, err := s.conn(addr)
		if err != nil {
			if errors.Is(err, ErrPoolClosed) {
				return nil, err
			}
			// The member may have been removed after its identity reached
			// this stub (§4.3): exclude it until a newer table says
			// otherwise and try the next candidate.
			lastErr = err
			s.routes.Exclude(addr)
			continue
		}
		release := s.routes.Acquire(addr)
		out, err := c.Call(s.name, method, payload, remaining)
		release()
		if err == nil {
			s.routes.Readmit(addr)
			return out, nil
		}
		switch {
		case isRemoteAppError(err):
			// The method executed and returned an application error; do not
			// retry elsewhere.
			return nil, err
		case errors.Is(err, transport.ErrFrameTooLarge):
			// Caller-side payload bug: the request cannot be framed for any
			// member and the connection is still healthy. Fail just this
			// call instead of dropping members.
			return nil, err
		case errors.Is(err, transport.ErrTimeout):
			// Slow is not dead: the connection is healthy and multiplexes
			// other callers' in-flight invocations, so dropping it would fail
			// them all, and the member itself may answer everyone else
			// promptly. Keep both; the shared budget (charged above) is what
			// bounds how long this invocation keeps trying.
			lastErr = err
		case errors.Is(err, transport.ErrOverloaded), errors.Is(err, transport.ErrExpired):
			// The member's admission controller refused the work: it is
			// saturated, not gone. Feed the balancer's load signal instead of
			// tombstoning the member, and try a less-loaded one.
			s.routes.MarkLoaded(addr)
			lastErr = err
		default:
			// Transport failure: exclude the member and fail over.
			lastErr = err
			s.routes.Exclude(addr)
			s.conns.Drop(addr)
		}
	}
	if lastErr == nil {
		lastErr = errors.New("core: no members left to try")
	}
	return nil, fmt.Errorf("%w: %s.%s: %v", ErrUnavailable, s.name, method, lastErr)
}

// isRemoteAppError distinguishes an error raised by the application method
// (which must propagate) from infrastructure failures (which are retried).
func isRemoteAppError(err error) bool {
	var remote *transport.RemoteError
	return errors.As(err, &remote)
}

// Close releases all connections.
func (s *Stub) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.conns.Close()
}

// Call is the typed convenience wrapper around Stub.Invoke: it encodes the
// argument (generated binary codec when the type carries one, gob
// otherwise) and decodes the reply, mirroring the static typing a generated
// RMI stub provides. Payloads travel through the transport arena: the
// request buffer is recycled once Invoke returns, and the reply buffer is
// recycled after decoding unless the reply type keeps zero-copy views into
// it.
func Call[Arg, Reply any](s *Stub, method string, arg Arg) (Reply, error) {
	var zero Reply
	payload, err := transport.Encode(&arg)
	if err != nil {
		return zero, err
	}
	out, err := s.Invoke(method, payload)
	transport.ReleasePayload(payload)
	if err != nil {
		return zero, err
	}
	var reply Reply
	err = transport.Decode(out, &reply)
	if !replyHoldsViews[Reply]() {
		transport.ReleasePayload(out)
	}
	if err != nil {
		return zero, err
	}
	return reply, nil
}

// CallKeyed is Call routed by consistent-hash key affinity (see
// InvokeKeyed): same-key invocations land on the same member.
func CallKeyed[Arg, Reply any](s *Stub, method, key string, arg Arg) (Reply, error) {
	var zero Reply
	payload, err := transport.Encode(&arg)
	if err != nil {
		return zero, err
	}
	out, err := s.InvokeKeyed(method, key, payload)
	transport.ReleasePayload(payload)
	if err != nil {
		return zero, err
	}
	var reply Reply
	err = transport.Decode(out, &reply)
	if !replyHoldsViews[Reply]() {
		transport.ReleasePayload(out)
	}
	if err != nil {
		return zero, err
	}
	return reply, nil
}

// replyHoldsViews reports whether decoding into Reply may leave []byte
// fields aliasing the response buffer (the generated codec marks such types
// with an ERMIViews method); if so the buffer must stay out of the arena.
func replyHoldsViews[Reply any]() bool {
	_, viewy := any((*Reply)(nil)).(interface{ ERMIViews() })
	return viewy
}
