package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/transport"
)

// Stub is the client's local representative of an elastic object pool
// (§2.3). To the client application the pool is a single remote object; the
// stub knows about the pool members, performs client-side load balancing
// (round-robin or random, §4.3), follows redirects from draining or
// rebalancing skeletons, and fails invocations over to other members. Only
// when all attempts to communicate with the pool fail is the error
// propagated to the application.
type Stub struct {
	name    string
	timeout time.Duration
	random  bool
	batch   transport.BatchOptions // zero value: batching disabled

	// conns dials and caches one client per member outside the stub lock,
	// with a per-address singleflight guard: a slow or unreachable member
	// stalls only the callers that picked it, never the whole stub.
	conns *transport.ConnCache

	// pendingN counts asynchronous invocations started but not yet
	// completed, so callers (and scaling policies polling Pending) can see
	// queued async work that has not reached a member's meter yet.
	pendingN atomic.Int64

	mu      sync.Mutex
	members []string // known skeleton addresses, sentinel first
	next    int
	closed  bool
}

// StubOption customizes stub behaviour.
type StubOption func(*Stub)

// WithRandomBalancing selects random instead of round-robin member choice.
func WithRandomBalancing() StubOption {
	return func(s *Stub) { s.random = true }
}

// WithCallTimeout bounds each remote invocation attempt.
func WithCallTimeout(d time.Duration) StubOption {
	return func(s *Stub) { s.timeout = d }
}

// WithBatching coalesces concurrent invocations destined for the same
// member into batch frames, waiting at most maxDelay for companions (the
// adaptive flusher never delays sparse traffic; see transport.BatchOptions).
// Worth enabling for pipelined async workloads; plain request/response
// callers pay nothing when traffic is sparse.
func WithBatching(maxDelay time.Duration) StubOption {
	return func(s *Stub) { s.batch = transport.BatchOptions{MaxDelay: maxDelay} }
}

// NewStub creates a stub for the elastic class name from seed endpoints
// (typically the registry binding, sentinel first). The stub contacts the
// sentinel on first use to learn the identities of the other skeletons.
func NewStub(name string, endpoints []string, opts ...StubOption) (*Stub, error) {
	if name == "" {
		return nil, errors.New("core: stub needs a pool name")
	}
	if len(endpoints) == 0 {
		return nil, errors.New("core: stub needs at least one endpoint")
	}
	s := &Stub{
		name:    name,
		timeout: 10 * time.Second,
		members: append([]string(nil), endpoints...),
	}
	for _, o := range opts {
		o(s)
	}
	// The cache is built after options so WithBatching applies to every
	// member connection it dials.
	s.conns = transport.NewConnCacheBatched(2*time.Second, s.batch)
	return s, nil
}

// LookupStub resolves name through the registry and returns a stub.
func LookupStub(name string, reg *RegistryClient, opts ...StubOption) (*Stub, error) {
	eps, err := reg.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("core: lookup %s: %w", name, err)
	}
	return NewStub(name, eps, opts...)
}

// Members returns the stub's current view of the pool membership.
func (s *Stub) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.members...)
}

func (s *Stub) pick() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrPoolClosed
	}
	if len(s.members) == 0 {
		return "", ErrUnavailable
	}
	if s.random {
		return s.members[rand.Intn(len(s.members))], nil //nolint:gosec // balancing
	}
	addr := s.members[s.next%len(s.members)]
	s.next++
	return addr, nil
}

func (s *Stub) conn(addr string) (*transport.Client, error) {
	c, err := s.conns.Get(addr)
	if errors.Is(err, transport.ErrClosed) {
		return nil, ErrPoolClosed
	}
	return c, err
}

func (s *Stub) dropMember(addr string) {
	s.mu.Lock()
	keep := s.members[:0]
	for _, m := range s.members {
		if m != addr {
			keep = append(keep, m)
		}
	}
	s.members = keep
	s.mu.Unlock()
	s.conns.Drop(addr)
}

func (s *Stub) install(members []string) {
	if len(members) == 0 {
		return
	}
	s.mu.Lock()
	s.members = append([]string(nil), members...)
	s.mu.Unlock()
}

// Refresh re-learns the pool membership by asking any reachable member for
// the identities of the skeletons (the stub-sentinel discovery of §4.3).
func (s *Stub) Refresh() error {
	for _, addr := range s.Members() {
		c, err := s.conn(addr)
		if err != nil {
			continue
		}
		var rep DiscoverReply
		if err := c.CallDecode(s.name, MethodDiscover, nil, &rep, s.timeout); err != nil {
			continue
		}
		fresh := make([]string, 0, len(rep.Members))
		for _, m := range rep.Members {
			if !m.Draining {
				fresh = append(fresh, m.Addr)
			}
		}
		s.install(fresh)
		return nil
	}
	return ErrUnavailable
}

// Invoke executes one remote method invocation against the pool. Redirects
// are followed, failed members retried on others; the error is propagated
// only if all attempts to communicate with the pool fail.
func (s *Stub) Invoke(method string, payload []byte) ([]byte, error) {
	var lastErr error
	tried := make(map[string]bool)
	refreshed := false

	addr, err := s.pick()
	if err != nil {
		return nil, err
	}
	attempts := len(s.Members())*2 + 2
	for i := 0; i < attempts; i++ {
		c, err := s.conn(addr)
		if err != nil {
			lastErr = err
			tried[addr] = true
			s.dropMember(addr)
			addr = s.nextCandidate(tried, &refreshed)
			if addr == "" {
				break
			}
			continue
		}
		out, err := c.Call(s.name, method, payload, s.timeout)
		if err == nil {
			return out, nil
		}
		var redirect *transport.RedirectError
		switch {
		case errors.As(err, &redirect):
			// Draining or rebalancing member: follow the redirect.
			tried[addr] = true
			addr = pickTarget(redirect.Targets, tried)
			if addr == "" {
				addr = s.nextCandidate(tried, &refreshed)
			}
			if addr == "" {
				lastErr = err
			}
		case isRemoteAppError(err):
			// The method executed and returned an application error; do not
			// retry elsewhere.
			return nil, err
		case errors.Is(err, transport.ErrFrameTooLarge):
			// Caller-side payload bug: the request cannot be framed for any
			// member and the connection is still healthy. Fail just this
			// call instead of dropping members.
			return nil, err
		default:
			// Transport failure: the member may have been removed after its
			// identity reached this stub (§4.3) — retry on others.
			lastErr = err
			tried[addr] = true
			s.dropMember(addr)
			addr = s.nextCandidate(tried, &refreshed)
		}
		if addr == "" {
			break
		}
	}
	if lastErr == nil {
		lastErr = errors.New("core: no members left to try")
	}
	return nil, fmt.Errorf("%w: %s.%s: %v", ErrUnavailable, s.name, method, lastErr)
}

// nextCandidate returns an untried member, refreshing membership once if all
// known members have been tried.
func (s *Stub) nextCandidate(tried map[string]bool, refreshed *bool) string {
	for _, m := range s.Members() {
		if !tried[m] {
			return m
		}
	}
	if !*refreshed {
		*refreshed = true
		if err := s.Refresh(); err == nil {
			for _, m := range s.Members() {
				if !tried[m] {
					return m
				}
			}
		}
	}
	return ""
}

func pickTarget(targets []string, tried map[string]bool) string {
	for _, t := range targets {
		if !tried[t] {
			return t
		}
	}
	return ""
}

// isRemoteAppError distinguishes an error raised by the application method
// (which must propagate) from infrastructure failures (which are retried).
func isRemoteAppError(err error) bool {
	var remote *transport.RemoteError
	return errors.As(err, &remote)
}

// Close releases all connections.
func (s *Stub) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.conns.Close()
}

// Call is the typed convenience wrapper around Stub.Invoke: it gob-encodes
// the argument and decodes the reply, mirroring the static typing a
// generated RMI stub provides.
func Call[Arg, Reply any](s *Stub, method string, arg Arg) (Reply, error) {
	var zero Reply
	payload, err := transport.Encode(arg)
	if err != nil {
		return zero, err
	}
	out, err := s.Invoke(method, payload)
	if err != nil {
		return zero, err
	}
	var reply Reply
	if err := transport.Decode(out, &reply); err != nil {
		return zero, err
	}
	return reply, nil
}
