// Package core implements ElasticRMI itself — the paper's contribution: a
// runtime for elastic remote objects. An elastic class is instantiated into
// a pool of objects, one per cluster slice; the pool behaves toward clients
// as a single remote object. Stubs (Stub) perform client-side load
// balancing; skeletons (one per member) dispatch invocations, measure
// workload and support drain/redirect on scale-down; the sentinel (the
// lowest-UID member) serves discovery, broadcasts pool state and directs
// server-side rebalancing; the Pool manager grows and shrinks the pool every
// burst interval according to a scaling policy (implicit CPU-based, coarse
// CPU/RAM thresholds, fine-grained ChangePoolSize, or application-level
// Decider).
//
// Invocation is synchronous (Stub.Invoke, Call) or asynchronous: InvokeAsync
// returns a future so one caller can pipeline many invocations against the
// pool, InvokeOneWay submits fire-and-forget work, and WithBatching
// coalesces concurrent invocations bound for the same member into batch
// frames (see async.go and internal/transport).
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"elasticrmi/internal/metrics"
	"elasticrmi/internal/simclock"
	"elasticrmi/internal/transport"
)

// Exported errors.
var (
	// ErrPoolClosed is returned for operations on a closed pool or stub.
	ErrPoolClosed = errors.New("core: pool closed")
	// ErrUnavailable is returned by a stub when no pool member is reachable.
	ErrUnavailable = errors.New("core: elastic object pool unavailable")
	// ErrNotBound is returned by registry lookups for unknown names.
	ErrNotBound = errors.New("core: name not bound")
)

// Object is one member instance of an elastic class: the application code
// that executes remote method invocations on one JVM/slice in the paper's
// terms. Implementations are free to keep local state; shared state must go
// through MemberContext.State (the external key-value store, §4.1).
type Object interface {
	// HandleCall executes one remote method invocation.
	HandleCall(method string, arg []byte) ([]byte, error)
}

// RequestHandler is implemented by Objects that want the full transport
// request instead of raw bytes. The skeleton prefers this path: handlers
// can Retain the request when decoded arguments alias the frame's payload
// (zero-copy []byte views) and set ReleaseReply so codec-encoded replies
// are returned to the payload arena once written. The Mux implements it.
type RequestHandler interface {
	HandleRequest(req *transport.Request) ([]byte, error)
}

// Closer is implemented by Objects that need teardown when their member is
// removed from the pool.
type Closer interface {
	Close() error
}

// PoolSizer is the fine-grained elasticity hook of Fig. 3: the runtime polls
// every member each burst interval; the returned deltas are averaged to
// decide how many objects to add (positive) or remove (negative). If the
// application object implements PoolSizer, CPU/RAM-threshold scaling is
// disabled (§3.3: "ElasticRMI allows classes to use only a single decision
// mechanism").
type PoolSizer interface {
	ChangePoolSize() int
}

// RAMGauge is implemented by Objects that can report their memory
// utilization in percent of the slice reservation.
type RAMGauge interface {
	RAMUsage() float64
}

// Decider makes application-level scaling decisions spanning multiple
// elastic pools (§3.3, the Decider class). It returns the desired pool size.
type Decider interface {
	DesiredPoolSize(poolName string, current int) int
}

// Factory creates the application object for a new pool member.
type Factory func(ctx *MemberContext) (Object, error)

// Config mirrors the ElasticObject configuration surface of Fig. 3.
type Config struct {
	// Name is the elastic class name: the registry binding and the shared
	// state namespace.
	Name string
	// MinPoolSize is the minimum number of members (>= 2, §4.2).
	MinPoolSize int
	// MaxPoolSize is the maximum number of members.
	MaxPoolSize int
	// BurstInterval is how often scaling decisions are made. Default 60s
	// (§3.2).
	BurstInterval time.Duration
	// CPUIncrThreshold / CPUDecrThreshold are the average-CPU% bounds that
	// trigger adding/removing one object. Defaults 90 / 60 (§3.2, implicit
	// elasticity).
	CPUIncrThreshold float64
	CPUDecrThreshold float64
	// RAMIncrThreshold / RAMDecrThreshold optionally add memory conditions,
	// combined with CPU using logical OR (§3.3). Zero disables them.
	RAMIncrThreshold float64
	RAMDecrThreshold float64
	// Decider, when non-nil, overrides all other scaling mechanisms.
	Decider Decider
	// Clock is the time source; nil means wall clock.
	Clock simclock.Clock
	// SliceCPUs is the CPU capacity of each member's slice used for
	// utilization accounting. Default 2 (the paper's example reservation).
	SliceCPUs float64
	// DrainTimeout bounds how long a removed member waits for pending
	// invocations before shutdown (§2.5). Default 10s; tests use a short
	// value to keep scale-down fast.
	DrainTimeout time.Duration
	// DisableBroadcast turns off the periodic pool-state broadcast (used by
	// tests that exercise the pool without group traffic).
	DisableBroadcast bool
	// MaxConcurrentInvocations bounds how many invocations one member
	// executes concurrently (its skeleton's admission gate); 0 selects the
	// transport default. Set it to the slice's real service parallelism so
	// overload is shed early instead of queued into collapse.
	MaxConcurrentInvocations int
	// MaxQueuedInvocations bounds how many admitted invocations may wait
	// for a free execution slot per member; excess arrivals are shed with an
	// overload reply (stubs retry on a less-loaded member, and shed counts
	// feed the scaling policies). 0 selects the transport default.
	MaxQueuedInvocations int
}

func (c *Config) validate() error {
	if c.Name == "" {
		return errors.New("core: Config.Name is required")
	}
	if c.MinPoolSize < 2 {
		return fmt.Errorf("core: MinPoolSize must be >= 2 (got %d): an elastic class can only be instantiated with a minimum of two objects", c.MinPoolSize)
	}
	if c.MaxPoolSize < c.MinPoolSize {
		return fmt.Errorf("core: MaxPoolSize %d < MinPoolSize %d", c.MaxPoolSize, c.MinPoolSize)
	}
	return nil
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BurstInterval == 0 {
		out.BurstInterval = 60 * time.Second
	}
	if out.CPUIncrThreshold == 0 {
		out.CPUIncrThreshold = 90
	}
	if out.CPUDecrThreshold == 0 {
		out.CPUDecrThreshold = 60
	}
	if out.Clock == nil {
		out.Clock = simclock.Real{}
	}
	if out.SliceCPUs == 0 {
		out.SliceCPUs = 2
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 10 * time.Second
	}
	return out
}

// MethodStat re-exports the per-method statistics type for applications.
type MethodStat = metrics.MethodStat

// MemberContext gives an application Object access to its runtime
// surroundings: shared state, workload statistics (getMethodCallStats,
// getAvgCPUUsage, getAvgRAMUsage of Fig. 3) and pool metadata.
type MemberContext struct {
	// UID is the member's monotonically increasing unique identifier.
	UID int64
	// PoolName is the elastic class name.
	PoolName string
	// State is the shared-state accessor backed by the external key-value
	// store.
	State *State
	// Clock is the pool's time source.
	Clock simclock.Clock

	statsFn    func() map[string]metrics.MethodStat
	usageFn    func() metrics.Usage
	poolSizeFn func() int
	rosterFn   func() []MemberInfo
	peerSendFn func(toGroupAddr, topic string, payload []byte) error
	groupAddr  string

	peerMu      sync.Mutex
	peerHandler func(from, topic string, payload []byte)
}

// MethodCallStats returns the average number of calls and latency of each
// remote method over the last completed burst interval.
func (c *MemberContext) MethodCallStats() map[string]MethodStat {
	if c.statsFn == nil {
		return map[string]MethodStat{}
	}
	return c.statsFn()
}

// AvgCPUUsage returns this member's CPU utilization (percent) averaged over
// the last completed burst interval.
func (c *MemberContext) AvgCPUUsage() float64 {
	if c.usageFn == nil {
		return 0
	}
	return c.usageFn().CPU
}

// AvgRAMUsage returns this member's memory utilization (percent) over the
// last completed burst interval.
func (c *MemberContext) AvgRAMUsage() float64 {
	if c.usageFn == nil {
		return 0
	}
	return c.usageFn().RAM
}

// PoolSize returns the current number of members in the pool.
func (c *MemberContext) PoolSize() int {
	if c.poolSizeFn == nil {
		return 0
	}
	return c.poolSizeFn()
}

// Roster returns the pool membership as last disseminated (sentinel first).
func (c *MemberContext) Roster() []MemberInfo {
	if c.rosterFn == nil {
		return nil
	}
	return c.rosterFn()
}

// GroupAddr is this member's group-communication identity, usable as a
// peer-message destination by other members.
func (c *MemberContext) GroupAddr() string { return c.groupAddr }

// SendPeer delivers an application message to another pool member over the
// group layer (used by protocols among members, e.g. Paxos rounds).
func (c *MemberContext) SendPeer(toGroupAddr, topic string, payload []byte) error {
	if c.peerSendFn == nil {
		return errors.New("core: peer messaging unavailable")
	}
	return c.peerSendFn(toGroupAddr, topic, payload)
}

// SetPeerHandler installs the callback receiving peer messages sent by
// other members with SendPeer. The callback runs on the member's message
// loop and must not block.
func (c *MemberContext) SetPeerHandler(fn func(fromGroupAddr, topic string, payload []byte)) {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	c.peerHandler = fn
}

func (c *MemberContext) deliverPeer(from, topic string, payload []byte) {
	c.peerMu.Lock()
	h := c.peerHandler
	c.peerMu.Unlock()
	if h != nil {
		h(from, topic, payload)
	}
}
