package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// busyObject simulates application work: each call burns wall-clock time so
// the meter's busy-time-derived CPU% reflects real load.
type busyObject struct {
	ctx      *MemberContext
	work     time.Duration
	fineStep atomic.Int64 // when non-zero, implements PoolSizer behaviour
	fine     bool
}

func (o *busyObject) HandleCall(method string, arg []byte) ([]byte, error) {
	time.Sleep(o.work)
	return nil, nil
}

type busyFineObject struct {
	busyObject
}

func (o *busyFineObject) ChangePoolSize() int {
	return int(o.fineStep.Load())
}

func TestImplicitPolicyScalesUpUnderLoad(t *testing.T) {
	env := newTestEnv(t, 8)
	factory := func(ctx *MemberContext) (Object, error) {
		return &busyObject{ctx: ctx, work: 2 * time.Millisecond}, nil
	}
	pool, err := NewPool(Config{
		Name: "busy", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval:    time.Hour, // stepped manually
		SliceCPUs:        1,
		DisableBroadcast: true,
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()
	if pool.Policy() != "implicit" {
		t.Fatalf("policy = %s, want implicit", pool.Policy())
	}

	stub, err := LookupStub("busy", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()

	// Saturate both members: 8 concurrent callers of 2ms work on 1-CPU
	// slices -> avg CPU ~100%.
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = stub.Invoke("Work", nil)
				}
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	pool.Step() // one burst-interval evaluation
	close(stop)
	if got := pool.Size(); got != 3 {
		t.Fatalf("size after hot step = %d, want 3 (implicit +1)", got)
	}

	// Idle: next evaluation sees ~0% CPU and removes one object.
	time.Sleep(50 * time.Millisecond)
	pool.Step()
	if got := pool.Size(); got != 2 {
		t.Fatalf("size after idle step = %d, want 2 (implicit -1)", got)
	}
}

func TestFinePolicyDrivesPoolFromChangePoolSize(t *testing.T) {
	env := newTestEnv(t, 8)
	var objs []*busyFineObject
	factory := func(ctx *MemberContext) (Object, error) {
		o := &busyFineObject{}
		o.ctx = ctx
		objs = append(objs, o)
		return o, nil
	}
	pool, err := NewPool(Config{
		Name: "fine", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()
	if pool.Policy() != "fine" {
		t.Fatalf("policy = %s, want fine (object implements PoolSizer)", pool.Policy())
	}

	for _, o := range objs {
		o.fineStep.Store(2)
	}
	pool.Step()
	if got := pool.Size(); got != 4 {
		t.Fatalf("size = %d, want 4 (members asked +2)", got)
	}
	for _, o := range objs {
		o.fineStep.Store(-1)
	}
	pool.Step()
	if got := pool.Size(); got != 3 {
		t.Fatalf("size = %d, want 3 (members asked -1)", got)
	}
}

func TestDeciderOverridesEverything(t *testing.T) {
	env := newTestEnv(t, 8)
	desired := int64(5)
	factory := func(ctx *MemberContext) (Object, error) {
		o := &busyFineObject{}
		o.fineStep.Store(-1) // fine hook says shrink; decider must win
		return o, nil
	}
	pool, err := NewPool(Config{
		Name: "decided", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Hour, DisableBroadcast: true,
		Decider: deciderFunc(func(name string, cur int) int { return int(atomic.LoadInt64(&desired)) }),
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()
	if pool.Policy() != "decider" {
		t.Fatalf("policy = %s, want decider", pool.Policy())
	}
	pool.Step()
	if got := pool.Size(); got != 5 {
		t.Fatalf("size = %d, want decider's 5", got)
	}
	atomic.StoreInt64(&desired, 3)
	pool.Step()
	if got := pool.Size(); got != 3 {
		t.Fatalf("size = %d, want decider's 3", got)
	}
}

func TestScaleEventsCarryProvisioningLatency(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "events", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	if err := pool.Resize(2); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	select {
	case ev := <-pool.Events():
		if ev.From != 2 || ev.To != 4 {
			t.Fatalf("event = %+v", ev)
		}
		if ev.ProvisioningLatency <= 0 {
			t.Fatalf("provisioning latency = %v, want > 0", ev.ProvisioningLatency)
		}
	default:
		t.Fatal("no scale event emitted")
	}
}

func TestMemberFailureRecovery(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "failover", MinPoolSize: 3, MaxPoolSize: 6,
		BurstInterval: time.Hour,
	})
	members := pool.Members()
	sentinelUID := members[0].UID
	// Kill the sentinel: heartbeat detection must remove it, elect the next
	// lowest UID and regrow to the minimum.
	if !pool.KillMember(sentinelUID) {
		t.Fatal("KillMember failed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ms := pool.Members()
		if len(ms) >= 3 && ms[0].UID != sentinelUID {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	ms := pool.Members()
	if len(ms) < 3 {
		t.Fatalf("pool size %d after failure, want regrown to >= 3", len(ms))
	}
	if ms[0].UID == sentinelUID {
		t.Fatal("sentinel not re-elected")
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].UID >= ms[i].UID {
			t.Fatalf("roster not UID-sorted after recovery: %+v", ms)
		}
	}
	// The pool must still serve invocations.
	stub, err := LookupStub("failover", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()
	if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
		t.Fatalf("invoke after failover: %v", err)
	}
}

func TestStubLearnsMembersFromSentinelSeed(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "rebalance", MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour,
	})
	// Issue the pool-state broadcast so skeletons hold the fresh table,
	// then check in-band discovery: a stub seeded ONLY with the sentinel
	// learns every member from its first piggybacked reply.
	pool.BroadcastNow()
	time.Sleep(50 * time.Millisecond)
	stub, err := NewStub("rebalance", []string{pool.SentinelAddr()})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	if err := stub.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if got := len(stub.Members()); got != 3 {
		t.Fatalf("discovered %d members, want 3", got)
	}
}
