package core

import (
	"sync"
	"testing"
	"testing/quick"

	"elasticrmi/internal/kvstore"
)

func newTestState(t *testing.T, class, owner string) (*State, *kvstore.Cluster) {
	t.Helper()
	store, err := kvstore.NewCluster(1, nil)
	if err != nil {
		t.Fatalf("kvstore: %v", err)
	}
	t.Cleanup(store.Close)
	return NewState(class, owner, store, nil), store
}

func TestStateKeyNamespacing(t *testing.T) {
	s, store := newTestState(t, "C1", "m1")
	if got := s.Key("x"); got != "C1$x" {
		t.Fatalf("Key = %q, want C1$x (Fig. 6 naming)", got)
	}
	if err := s.PutInt("x", 5); err != nil {
		t.Fatalf("PutInt: %v", err)
	}
	// The raw store sees the namespaced key.
	raw, err := store.GetInt64("C1$x")
	if err != nil || raw != 5 {
		t.Fatalf("raw = %d, %v", raw, err)
	}
	// A different class does not see it.
	other := NewState("C2", "m1", store, nil)
	v, err := other.GetInt("x")
	if err != nil || v != 0 {
		t.Fatalf("cross-class read = %d, %v, want 0", v, err)
	}
}

func TestStateTypedAccessors(t *testing.T) {
	s, _ := newTestState(t, "C", "m")
	if err := s.PutString("s", "hello"); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetString("s"); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if err := s.PutFloat("f", 3.5); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetFloat("f"); got != 3.5 {
		t.Fatalf("float = %v", got)
	}
	if err := s.PutBytes("b", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetBytes("b"); len(got) != 2 {
		t.Fatalf("bytes = %v", got)
	}
	if got, _ := s.GetBytes("missing"); got != nil {
		t.Fatalf("missing bytes = %v, want nil", got)
	}
	if n, _ := s.AddInt("i", 3); n != 3 {
		t.Fatalf("add = %d", n)
	}
	if err := s.Delete("i"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.GetInt("i"); n != 0 {
		t.Fatalf("deleted int = %d", n)
	}
}

func TestStateFieldsList(t *testing.T) {
	s, _ := newTestState(t, "C", "m")
	s.PutInt("a", 1)
	s.PutInt("b", 2)
	fields, err := s.Fields()
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0] != "a" || fields[1] != "b" {
		t.Fatalf("fields = %v", fields)
	}
}

// TestSynchronizedMutualExclusion runs racing increments through the
// per-class lock: the final value proves critical sections never overlap,
// across members and within one member.
func TestSynchronizedMutualExclusion(t *testing.T) {
	sA, store := newTestState(t, "C", "memberA")
	sB := NewState("C", "memberB", store, nil)

	const workers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		st := sA
		if w%2 == 1 {
			st = sB
		}
		go func(st *State) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := st.Synchronized(func() error {
					// Deliberately non-atomic read-modify-write: only the
					// lock makes it safe.
					v, err := st.GetInt("counter")
					if err != nil {
						return err
					}
					return st.PutInt("counter", v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(st)
	}
	wg.Wait()
	got, err := sA.GetInt("counter")
	if err != nil || got != workers*per {
		t.Fatalf("counter = %d, %v, want %d", got, err, workers*per)
	}
}

func TestTryLockContention(t *testing.T) {
	s, _ := newTestState(t, "C", "m")
	rel1, ok, err := s.TryLock("L")
	if err != nil || !ok {
		t.Fatalf("first TryLock: %v %v", ok, err)
	}
	_, ok, err = s.TryLock("L")
	if err != nil || ok {
		t.Fatalf("second TryLock should fail: ok=%v err=%v", ok, err)
	}
	if err := rel1(); err != nil {
		t.Fatalf("release: %v", err)
	}
	rel2, ok, err := s.TryLock("L")
	if err != nil || !ok {
		t.Fatalf("TryLock after release: %v %v", ok, err)
	}
	rel2()
}

// Property: round-tripping arbitrary byte values through a field preserves
// them exactly.
func TestStateBytesRoundTripProperty(t *testing.T) {
	s, _ := newTestState(t, "P", "m")
	prop := func(field string, value []byte) bool {
		if field == "" {
			field = "f"
		}
		if err := s.PutBytes(field, value); err != nil {
			return false
		}
		got, err := s.GetBytes(field)
		if err != nil {
			return false
		}
		if len(value) == 0 {
			return len(got) == 0
		}
		return string(got) == string(value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStateSurvivesStoreNodeLoss: with a replicated store (R=2), elastic-
// object field access and class locks ride out the crash of a store node —
// the cluster promotes backups and State's bounded retry absorbs the blip.
func TestStateSurvivesStoreNodeLoss(t *testing.T) {
	store, err := kvstore.NewReplicated(2, 2, nil)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	defer store.Close()
	st := NewState("Acct", "member-1", store, nil)

	if err := st.PutInt("balance", 7); err != nil {
		t.Fatalf("PutInt: %v", err)
	}
	release, ok, err := st.TryLock("guard")
	if err != nil || !ok {
		t.Fatalf("TryLock = %v, %v", ok, err)
	}

	if err := store.CrashNode(store.Addrs()[0]); err != nil {
		t.Fatalf("CrashNode: %v", err)
	}

	if v, err := st.GetInt("balance"); err != nil || v != 7 {
		t.Fatalf("GetInt after crash = %d, %v (acked field write lost)", v, err)
	}
	if err := st.PutInt("balance", 8); err != nil {
		t.Fatalf("PutInt after crash: %v", err)
	}
	if _, ok, err := st.TryLock("guard"); err != nil || ok {
		t.Fatalf("second TryLock after crash = %v, %v; want held (lease must survive failover)", ok, err)
	}
	if err := release(); err != nil {
		t.Fatalf("release after crash: %v", err)
	}
	if err := st.Synchronized(func() error { return nil }); err != nil {
		t.Fatalf("Synchronized after crash: %v", err)
	}
}
