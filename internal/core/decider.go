package core

import (
	"math"
	"sync"
)

// Application-level scaling decisions (§3.3, "Making Application-Level
// Scaling Decisions"): a Decider makes decisions with a global view of the
// entire application, spanning multiple elastic pools. The runtime calls the
// decider every burst interval to get each pool's desired size.

// DeciderFunc adapts a function to the Decider interface.
type DeciderFunc func(poolName string, current int) int

var _ Decider = DeciderFunc(nil)

// DesiredPoolSize implements Decider.
func (f DeciderFunc) DesiredPoolSize(poolName string, current int) int {
	return f(poolName, current)
}

// ProportionalDecider sizes dependent tiers of a multi-pool application: the
// desired size of each named pool is a fixed ratio of a leader quantity
// (e.g. the front-tier pool size or an offered request rate). It is the
// tech-report's canonical example of a monitoring component that elastic
// objects report to: the application is responsible for feeding it
// (Observe), the runtime for polling it every burst interval.
//
// Safe for concurrent use by multiple pools.
type ProportionalDecider struct {
	mu     sync.Mutex
	ratios map[string]float64
	min    int
	leader float64
}

var _ Decider = (*ProportionalDecider)(nil)

// NewProportionalDecider creates a decider with per-pool ratios: pool p
// wants ceil(ratio[p] x leader). Pools not in the map keep their current
// size. minimum applies to every sized pool (at least 2, the elastic
// minimum).
func NewProportionalDecider(ratios map[string]float64, minimum int) *ProportionalDecider {
	if minimum < 2 {
		minimum = 2
	}
	r := make(map[string]float64, len(ratios))
	for k, v := range ratios {
		r[k] = v
	}
	return &ProportionalDecider{ratios: r, min: minimum}
}

// Observe publishes the current leader quantity; the latest value wins.
func (d *ProportionalDecider) Observe(leader float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.leader = leader
}

// DesiredPoolSize implements Decider.
func (d *ProportionalDecider) DesiredPoolSize(poolName string, current int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	ratio, ok := d.ratios[poolName]
	if !ok {
		return current
	}
	want := int(math.Ceil(ratio * d.leader))
	if want < d.min {
		want = d.min
	}
	return want
}
