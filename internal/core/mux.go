package core

import (
	"fmt"

	"elasticrmi/internal/transport"
)

// Mux dispatches remote method invocations by name to typed handlers. It is
// the Go counterpart of the stub/skeleton method tables that the ElasticRMI
// preprocessor generates from an elastic interface in the paper: the
// application registers one handler per remote method and the Mux takes
// care of unmarshalling arguments and marshalling results.
type Mux struct {
	handlers map[string]func(req *transport.Request) ([]byte, error)
}

var _ Object = (*Mux)(nil)
var _ RequestHandler = (*Mux)(nil)

// NewMux returns an empty method table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]func(*transport.Request) ([]byte, error))}
}

// HandleCall implements Object. Callers holding only raw bytes (tests,
// adaptors) dispatch through here; the skeleton's hot path uses
// HandleRequest so handlers see the transport request's payload lifetime.
func (m *Mux) HandleCall(method string, arg []byte) ([]byte, error) {
	return m.HandleRequest(&transport.Request{Method: method, Payload: arg})
}

// HandleRequest implements RequestHandler: it dispatches with full request
// context, letting typed handlers retain zero-copy payload views past the
// frame's lifetime and mark codec-encoded replies as transport-owned arena
// memory (released once the response frame is written).
func (m *Mux) HandleRequest(req *transport.Request) ([]byte, error) {
	h, ok := m.handlers[req.Method]
	if !ok {
		return nil, fmt.Errorf("core: no such remote method %q", req.Method)
	}
	return h(req)
}

// Methods returns the registered method names.
func (m *Mux) Methods() []string {
	out := make([]string, 0, len(m.handlers))
	for name := range m.handlers {
		out = append(out, name)
	}
	return out
}

// HandleRaw registers an untyped handler.
func (m *Mux) HandleRaw(name string, fn func(arg []byte) ([]byte, error)) {
	m.handlers[name] = func(req *transport.Request) ([]byte, error) {
		return fn(req.Payload)
	}
}

// Handle registers a typed remote method on the mux. Argument and reply
// travel through transport.Encode/Decode: generated binary codecs when the
// types carry them, gob otherwise. Whether the decoded argument may alias
// the request frame (zero-copy []byte views) is determined once here, so
// the per-call path only pays a Retain for types that need one.
func Handle[Arg, Reply any](m *Mux, name string, fn func(Arg) (Reply, error)) {
	// A type whose pointer form implements the ERMIViews marker decodes
	// []byte fields as views into the payload buffer: the frame must outlive
	// the handler, so the request is detached from arena recycling.
	_, viewy := any((*Arg)(nil)).(interface{ ERMIViews() })
	m.handlers[name] = func(req *transport.Request) ([]byte, error) {
		var arg Arg
		if err := transport.Decode(req.Payload, &arg); err != nil {
			return nil, fmt.Errorf("method %s: %w", name, err)
		}
		if viewy {
			req.Retain()
		}
		reply, err := fn(arg)
		if err != nil {
			return nil, err
		}
		out, err := transport.Encode(&reply)
		if err != nil {
			return nil, err
		}
		// The reply buffer is Encode output the handler hands over outright:
		// the transport releases it to the arena after the write.
		req.ReleaseReply = true
		return out, nil
	}
}
