package core

import (
	"fmt"

	"elasticrmi/internal/transport"
)

// Mux dispatches remote method invocations by name to typed handlers. It is
// the Go counterpart of the stub/skeleton method tables that the ElasticRMI
// preprocessor generates from an elastic interface in the paper: the
// application registers one handler per remote method and the Mux takes
// care of unmarshalling arguments and marshalling results.
type Mux struct {
	handlers map[string]func(arg []byte) ([]byte, error)
}

var _ Object = (*Mux)(nil)

// NewMux returns an empty method table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]func([]byte) ([]byte, error))}
}

// HandleCall implements Object.
func (m *Mux) HandleCall(method string, arg []byte) ([]byte, error) {
	h, ok := m.handlers[method]
	if !ok {
		return nil, fmt.Errorf("core: no such remote method %q", method)
	}
	return h(arg)
}

// Methods returns the registered method names.
func (m *Mux) Methods() []string {
	out := make([]string, 0, len(m.handlers))
	for name := range m.handlers {
		out = append(out, name)
	}
	return out
}

// HandleRaw registers an untyped handler.
func (m *Mux) HandleRaw(name string, fn func(arg []byte) ([]byte, error)) {
	m.handlers[name] = fn
}

// Handle registers a typed remote method on the mux. Argument and reply are
// gob-encoded on the wire.
func Handle[Arg, Reply any](m *Mux, name string, fn func(Arg) (Reply, error)) {
	m.handlers[name] = func(raw []byte) ([]byte, error) {
		var arg Arg
		if err := transport.Decode(raw, &arg); err != nil {
			return nil, fmt.Errorf("method %s: %w", name, err)
		}
		reply, err := fn(arg)
		if err != nil {
			return nil, err
		}
		return transport.Encode(reply)
	}
}
