package core

import "sort"

// The sentinel's server-side load balancing (§4.3): when some skeletons are
// overloaded relative to others, the sentinel decides how many pending
// invocations each overloaded skeleton should redirect and to whom, using
// the first-fit greedy bin-packing approximation.

// MemberLoad is one skeleton's load as observed by the sentinel.
type MemberLoad struct {
	Addr    string
	Pending int
}

// RedirectPlan tells one overloaded skeleton to redirect a share of its
// incoming invocations to Targets. Fraction is the portion of arrivals to
// redirect, in [0,1]; Amounts gives the per-target item counts the plan
// packed (for introspection and tests).
type RedirectPlan struct {
	From     string
	Fraction float64
	Targets  []string
	Amounts  map[string]int
}

// PlanRebalance computes redirect plans with first-fit bin packing. A member
// is overloaded when its pending count exceeds overloadFactor times the pool
// mean; the excess above the mean is treated as items to pack into the spare
// capacity (mean - pending) of underloaded members, iterating members in
// first-fit order.
func PlanRebalance(loads []MemberLoad, overloadFactor float64) []RedirectPlan {
	if len(loads) < 2 {
		return nil
	}
	if overloadFactor < 1 {
		overloadFactor = 1
	}
	total := 0
	for _, l := range loads {
		total += l.Pending
	}
	mean := float64(total) / float64(len(loads))
	if mean <= 0 {
		return nil
	}

	// Bins: spare capacity of underloaded members, in stable address order
	// (first-fit needs a deterministic bin order).
	type bin struct {
		addr  string
		spare int
	}
	var bins []bin
	var overloaded []MemberLoad
	for _, l := range loads {
		spare := int(mean) - l.Pending
		if spare > 0 {
			bins = append(bins, bin{addr: l.Addr, spare: spare})
		}
		if float64(l.Pending) > overloadFactor*mean {
			overloaded = append(overloaded, l)
		}
	}
	if len(bins) == 0 || len(overloaded) == 0 {
		return nil
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].addr < bins[j].addr })
	// Pack the most overloaded members first.
	sort.Slice(overloaded, func(i, j int) bool {
		if overloaded[i].Pending == overloaded[j].Pending {
			return overloaded[i].Addr < overloaded[j].Addr
		}
		return overloaded[i].Pending > overloaded[j].Pending
	})

	plans := make([]RedirectPlan, 0, len(overloaded))
	for _, o := range overloaded {
		excess := o.Pending - int(mean)
		if excess <= 0 {
			continue
		}
		plan := RedirectPlan{From: o.Addr, Amounts: make(map[string]int)}
		moved := 0
		for i := range bins {
			if excess == 0 {
				break
			}
			if bins[i].spare == 0 {
				continue
			}
			take := bins[i].spare
			if take > excess {
				take = excess
			}
			bins[i].spare -= take
			excess -= take
			moved += take
			plan.Amounts[bins[i].addr] += take
			plan.Targets = append(plan.Targets, bins[i].addr)
		}
		if moved == 0 {
			continue
		}
		plan.Fraction = float64(moved) / float64(o.Pending)
		if plan.Fraction > 1 {
			plan.Fraction = 1
		}
		plans = append(plans, plan)
	}
	if len(plans) == 0 {
		return nil
	}
	return plans
}
