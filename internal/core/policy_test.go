package core

import (
	"testing"
	"testing/quick"
)

func TestImplicitPolicy(t *testing.T) {
	p := ImplicitPolicy{}
	tests := []struct {
		name string
		m    PoolMetrics
		want int
	}{
		{"hot adds one", PoolMetrics{AvgCPU: 95, PoolSize: 4, MinPool: 2, MaxPool: 10}, 1},
		{"cool removes one", PoolMetrics{AvgCPU: 40, PoolSize: 4, MinPool: 2, MaxPool: 10}, -1},
		{"steady holds", PoolMetrics{AvgCPU: 75, PoolSize: 4, MinPool: 2, MaxPool: 10}, 0},
		{"at max clamps", PoolMetrics{AvgCPU: 99, PoolSize: 10, MinPool: 2, MaxPool: 10}, 0},
		{"at min clamps", PoolMetrics{AvgCPU: 10, PoolSize: 2, MinPool: 2, MaxPool: 10}, 0},
		{"boundary 90 holds", PoolMetrics{AvgCPU: 90, PoolSize: 4, MinPool: 2, MaxPool: 10}, 0},
		{"boundary 60 holds", PoolMetrics{AvgCPU: 60, PoolSize: 4, MinPool: 2, MaxPool: 10}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Decide(tc.m); got != tc.want {
				t.Errorf("Decide(%+v) = %d, want %d", tc.m, got, tc.want)
			}
		})
	}
}

// TestOverloadSignalScalesOut: a material shed/expired rate overrides the
// utilization thresholds and scales out, while a stray refusal (one client
// with a too-small budget) neither grows the pool nor vetoes a shrink.
func TestOverloadSignalScalesOut(t *testing.T) {
	p := ImplicitPolicy{}
	tests := []struct {
		name string
		m    PoolMetrics
		want int
	}{
		{"mass shedding at idle CPU adds one",
			PoolMetrics{AvgCPU: 6, Shed: 900, Calls: 1200, PoolSize: 4, MinPool: 2, MaxPool: 10}, 1},
		{"expired-only overload adds one",
			PoolMetrics{AvgCPU: 70, Expired: 50, Calls: 100, PoolSize: 4, MinPool: 2, MaxPool: 10}, 1},
		{"overload at max clamps",
			PoolMetrics{AvgCPU: 50, Shed: 1000, Calls: 100, PoolSize: 10, MinPool: 2, MaxPool: 10}, 0},
		{"stray refusal below per-member floor still shrinks",
			PoolMetrics{AvgCPU: 20, Expired: 3, Calls: 50000, PoolSize: 4, MinPool: 2, MaxPool: 10}, -1},
		{"sub-1%-of-volume refusals still shrink",
			PoolMetrics{AvgCPU: 20, Shed: 40, Calls: 50000, PoolSize: 4, MinPool: 2, MaxPool: 10}, -1},
		{"no volume observed: refusals alone scale out",
			PoolMetrics{AvgCPU: 20, Shed: 10, PoolSize: 4, MinPool: 2, MaxPool: 10}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Decide(tc.m); got != tc.want {
				t.Errorf("Decide(%+v) = %d, want %d", tc.m, got, tc.want)
			}
		})
	}
	// CoarsePolicy shares the same overload override.
	cp := CoarsePolicy{CPUIncr: 85, CPUDecr: 50}
	if got := cp.Decide(PoolMetrics{AvgCPU: 10, Shed: 500, Calls: 500, PoolSize: 4, MinPool: 2, MaxPool: 10}); got != 1 {
		t.Errorf("coarse overload Decide = %d, want 1", got)
	}
	if got := cp.Decide(PoolMetrics{AvgCPU: 10, Shed: 2, Calls: 50000, PoolSize: 4, MinPool: 2, MaxPool: 10}); got != -1 {
		t.Errorf("coarse stray-refusal Decide = %d, want -1", got)
	}
}

func TestCoarsePolicyLogicalOR(t *testing.T) {
	// Fig. 4b: CPU 85/50, RAM 70/40, combined with OR for growth.
	p := CoarsePolicy{CPUIncr: 85, CPUDecr: 50, RAMIncr: 70, RAMDecr: 40}
	tests := []struct {
		name string
		cpu  float64
		ram  float64
		want int
	}{
		{"cpu alone triggers", 90, 10, 1},
		{"ram alone triggers", 10, 75, 1},
		{"both trigger", 90, 75, 1},
		{"neither holds", 70, 60, 0},
		{"both low removes", 40, 30, -1},
		{"cpu low ram high holds", 40, 75, 1}, // RAM still over incr
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := PoolMetrics{AvgCPU: tc.cpu, AvgRAM: tc.ram, PoolSize: 5, MinPool: 2, MaxPool: 10}
			if got := p.Decide(m); got != tc.want {
				t.Errorf("cpu=%v ram=%v -> %d, want %d", tc.cpu, tc.ram, got, tc.want)
			}
		})
	}
}

func TestFinePolicyAveragesDeltas(t *testing.T) {
	p := FinePolicy{}
	tests := []struct {
		name   string
		deltas []int
		size   int
		want   int
	}{
		{"unanimous add two", []int{2, 2, 2}, 4, 2},
		{"average rounds", []int{2, 1, 1}, 4, 1},
		{"split rounds half up", []int{1, 0}, 4, 1},
		{"negative average", []int{-2, -2, -1}, 6, -2},
		{"disagreement cancels", []int{1, -1}, 4, 0},
		{"no sizers", nil, 4, 0},
		{"clamped to max", []int{5, 5}, 9, 1},
		{"clamped to min", []int{-5, -5}, 3, -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := PoolMetrics{FineDeltas: tc.deltas, PoolSize: tc.size, MinPool: 2, MaxPool: 10}
			if got := p.Decide(m); got != tc.want {
				t.Errorf("deltas=%v size=%d -> %d, want %d", tc.deltas, tc.size, got, tc.want)
			}
		})
	}
}

func TestDeciderPolicy(t *testing.T) {
	p := DeciderPolicy{}
	if got := p.Decide(PoolMetrics{DesiredSize: 7, PoolSize: 4, MinPool: 2, MaxPool: 10}); got != 3 {
		t.Fatalf("grow to desired = %d, want 3", got)
	}
	if got := p.Decide(PoolMetrics{DesiredSize: 2, PoolSize: 6, MinPool: 2, MaxPool: 10}); got != -4 {
		t.Fatalf("shrink to desired = %d, want -4", got)
	}
	if got := p.Decide(PoolMetrics{DesiredSize: -1, PoolSize: 6, MinPool: 2, MaxPool: 10}); got != 0 {
		t.Fatalf("no decider = %d, want 0", got)
	}
	if got := p.Decide(PoolMetrics{DesiredSize: 99, PoolSize: 6, MinPool: 2, MaxPool: 10}); got != 4 {
		t.Fatalf("desired above max = %d, want clamp to 4", got)
	}
}

// Property: every policy's decision keeps the pool inside [MinPool, MaxPool].
func TestPoliciesRespectBoundsProperty(t *testing.T) {
	policies := []Policy{
		ImplicitPolicy{},
		CoarsePolicy{CPUIncr: 85, CPUDecr: 50, RAMIncr: 70, RAMDecr: 40},
		FinePolicy{},
		DeciderPolicy{},
	}
	prop := func(cpu, ram uint8, size, min, max uint8, deltas []int8, desired int8) bool {
		lo := int(min%10) + 2
		hi := lo + int(max%20)
		sz := lo + int(size)%(hi-lo+1)
		fd := make([]int, len(deltas))
		for i, d := range deltas {
			fd[i] = int(d % 5)
		}
		m := PoolMetrics{
			AvgCPU: float64(cpu) / 2.55, AvgRAM: float64(ram) / 2.55,
			PoolSize: sz, MinPool: lo, MaxPool: hi,
			FineDeltas: fd, DesiredSize: int(desired),
		}
		for _, p := range policies {
			next := sz + p.Decide(m)
			if next < lo || next > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicySelection(t *testing.T) {
	base := Config{Name: "x", MinPoolSize: 2, MaxPoolSize: 4}
	cfg := base.withDefaults()
	if got := policyFor(cfg, false).Name(); got != "implicit" {
		t.Fatalf("default policy = %s", got)
	}
	if got := policyFor(cfg, true).Name(); got != "fine" {
		t.Fatalf("fine-grained policy = %s", got)
	}
	withDecider := cfg
	withDecider.Decider = deciderFunc(func(string, int) int { return 3 })
	if got := policyFor(withDecider, true).Name(); got != "decider" {
		t.Fatalf("decider policy = %s", got)
	}
	coarse := base
	coarse.CPUIncrThreshold = 85
	coarse.CPUDecrThreshold = 50
	coarse = coarse.withDefaults()
	if got := policyFor(coarse, false).Name(); got != "coarse" {
		t.Fatalf("coarse policy = %s", got)
	}
}

type deciderFunc func(string, int) int

func (f deciderFunc) DesiredPoolSize(name string, cur int) int { return f(name, cur) }
