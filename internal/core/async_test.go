package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/transport"
)

// TestInvokeAsyncRoundTrip pipelines a window of async invocations from one
// goroutine and checks the shared counter saw every one exactly once.
func TestInvokeAsyncRoundTrip(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "async-counter", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	_ = pool
	stub, err := LookupStub("async-counter", env.regCli)
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	const n = 64
	futures := make([]*Future[addReply], n)
	for i := 0; i < n; i++ {
		futures[i] = GoCall[addArgs, addReply](stub, "Add", addArgs{N: 1})
	}
	for i, f := range futures {
		if _, err := f.Get(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rep.Total != n {
		t.Fatalf("total = %d, want %d (async invocations lost or duplicated)", rep.Total, n)
	}
	if p := stub.Pending(); p != 0 {
		t.Fatalf("stub pending = %d after all futures completed", p)
	}
}

// TestInvokeAsyncFailsOver: the async path inherits Invoke's failover — a
// dead seed endpoint must not fail the future.
func TestInvokeAsyncFailsOver(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "async-failover", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	live := pool.Endpoints()[1]
	stub, err := NewStub("async-failover", []string{"127.0.0.1:1", live})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	rep, err := GoCall[addArgs, addReply](stub, "Add", addArgs{N: 5}).Get()
	if err != nil {
		t.Fatalf("async invoke with dead seed: %v", err)
	}
	if rep.Total != 5 {
		t.Fatalf("total = %d", rep.Total)
	}
}

// TestInvokeAsyncAllDeadPropagates: only when the whole pool is unreachable
// does the future surface an error (§4.3 contract, async edition).
func TestInvokeAsyncAllDeadPropagates(t *testing.T) {
	stub, err := NewStub("ghost", []string{"127.0.0.1:1", "127.0.0.1:2"})
	if err != nil {
		t.Fatalf("NewStub: %v", err)
	}
	defer stub.Close()
	if err := stub.InvokeAsync("M", nil).Err(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if err := stub.InvokeOneWay("M", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("one-way err = %v, want ErrUnavailable", err)
	}
}

// TestInvokeOneWayReachesPool: fire-and-forget invocations execute on the
// pool; the caller observes their effect through the shared state.
func TestInvokeOneWayReachesPool(t *testing.T) {
	env := newTestEnv(t, 8)
	newTestPool(t, env, Config{
		Name: "oneway-counter", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("oneway-counter", env.regCli)
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	const n = 50
	for i := 0; i < n; i++ {
		if err := OneWayCall(stub, "Add", addArgs{N: 1}); err != nil {
			t.Fatalf("OneWayCall %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if rep.Total == n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep, _ := Call[struct{}, addReply](stub, "Get", struct{}{})
	t.Fatalf("one-way invocations observed = %d, want %d", rep.Total, n)
}

// TestSentinelSeesAsyncPendingWork: in-flight async invocations must show
// up in the member pending counts the sentinel broadcasts and the scaling
// policies read — queued async work is real load.
func TestSentinelSeesAsyncPendingWork(t *testing.T) {
	env := newTestEnv(t, 8)
	release := make(chan struct{})
	var once sync.Once
	factory := func(ctx *MemberContext) (Object, error) {
		mux := NewMux()
		Handle(mux, "Block", func(struct{}) (struct{}, error) {
			<-release
			return struct{}{}, nil
		})
		return mux, nil
	}
	pool, err := NewPool(Config{
		Name: "async-pending", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() {
		once.Do(func() { close(release) })
		pool.Close()
	})
	stub, err := LookupStub("async-pending", env.regCli)
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	const n = 8
	arg := transport.MustEncode(struct{}{})
	futures := make([]*AsyncCall, n)
	for i := 0; i < n; i++ {
		futures[i] = stub.InvokeAsync("Block", arg)
	}
	// The stub sees its own queued async work immediately...
	if p := stub.Pending(); p == 0 {
		t.Fatal("stub.Pending() = 0 with async invocations in flight")
	}
	// ...and once the frames land, the member meters (the numbers the
	// sentinel broadcasts and policies consume) count them too.
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := 0
		for _, m := range pool.Members() {
			total += m.Pending
		}
		if total == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member pending = %d, want %d (async work invisible to sentinel)", total, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	once.Do(func() { close(release) })
	for i, f := range futures {
		if err := f.Err(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if p := stub.Pending(); p != 0 {
		t.Fatalf("stub pending = %d after completion", p)
	}
}

// TestBatchedStubPipelines: a stub built WithBatching keeps full invocation
// coherence under a concurrent pipelined workload.
func TestBatchedStubPipelines(t *testing.T) {
	env := newTestEnv(t, 8)
	newTestPool(t, env, Config{
		Name: "batched-counter", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("batched-counter", env.regCli, WithBatching(300*time.Microsecond))
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	const callers, per = 8, 32
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			futures := make([]*Future[addReply], per)
			for i := range futures {
				futures[i] = GoCall[addArgs, addReply](stub, "Add", addArgs{N: 1})
			}
			for _, f := range futures {
				if _, err := f.Get(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rep.Total != callers*per {
		t.Fatalf("total = %d, want %d", rep.Total, callers*per)
	}
}

// TestInvocationsExecuteOnDrainingMember: under epoch routing a draining
// member never refuses work — clients are steered away by the routing
// table, not by errors. Anything that still reaches the member (stale
// two-way callers, and one-way invocations, which carry no reply to
// correct the sender with) must execute locally instead of being dropped —
// otherwise every scale-down loses traffic for the whole drain window.
func TestInvocationsExecuteOnDrainingMember(t *testing.T) {
	env := newTestEnv(t, 8)
	var hits atomic.Int64
	factory := func(ctx *MemberContext) (Object, error) {
		mux := NewMux()
		Handle(mux, "Tick", func(struct{}) (struct{}, error) {
			hits.Add(1)
			return struct{}{}, nil
		})
		return mux, nil
	}
	pool, err := NewPool(Config{
		Name: "oneway-drain", MinPoolSize: 2, MaxPoolSize: 2,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory, env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() })
	stub, err := LookupStub("oneway-drain", env.regCli)
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	// Put every member into the draining state (as a scale-down would).
	pool.mu.Lock()
	members := append([]*member(nil), pool.members...)
	pool.mu.Unlock()
	for _, m := range members {
		m.draining.Store(true)
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.draining.Store(false)
		}
	})

	// Two-way invocations that reach a draining member are served (the
	// stub's table still lists both members; only a fresh epoch would
	// exclude them)...
	if _, err := stub.Invoke("Tick", transport.MustEncode(struct{}{})); err != nil {
		t.Fatalf("two-way invocation refused by draining member: %v", err)
	}
	hits.Store(0)
	// ...and one-way invocations must execute rather than vanish.
	const n = 10
	for i := 0; i < n; i++ {
		if err := stub.InvokeOneWay("Tick", transport.MustEncode(struct{}{})); err != nil {
			t.Fatalf("InvokeOneWay %d during drain: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for hits.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("draining members executed %d/%d one-way invocations", hits.Load(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
