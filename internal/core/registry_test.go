package core

import (
	"errors"
	"testing"

	"elasticrmi/internal/transport"
)

func startRegistry(t *testing.T) (*RegistryServer, *RegistryClient) {
	t.Helper()
	srv, err := NewRegistryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewRegistryServer: %v", err)
	}
	cli, err := DialRegistry(srv.Addr())
	if err != nil {
		t.Fatalf("DialRegistry: %v", err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

func TestRegistryBindLookupUnbind(t *testing.T) {
	_, cli := startRegistry(t)
	if _, err := cli.Lookup("nope"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Lookup(missing) = %v, want ErrNotBound", err)
	}
	if err := cli.Bind("cache", []string{"a:1", "b:2"}); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	eps, err := cli.Lookup("cache")
	if err != nil || len(eps) != 2 || eps[0] != "a:1" {
		t.Fatalf("Lookup = %v, %v", eps, err)
	}
	// Rebinding replaces.
	if err := cli.Bind("cache", []string{"c:3"}); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	eps, _ = cli.Lookup("cache")
	if len(eps) != 1 || eps[0] != "c:3" {
		t.Fatalf("after rebind = %v", eps)
	}
	names, err := cli.List()
	if err != nil || len(names) != 1 || names[0] != "cache" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := cli.Unbind("cache"); err != nil {
		t.Fatalf("Unbind: %v", err)
	}
	if _, err := cli.Lookup("cache"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Lookup after unbind = %v, want ErrNotBound", err)
	}
}

func TestMuxDispatch(t *testing.T) {
	m := NewMux()
	Handle(m, "Double", func(n int) (int, error) {
		return 2 * n, nil
	})
	Handle(m, "Fail", func(struct{}) (struct{}, error) {
		return struct{}{}, errors.New("app error")
	})
	arg, _ := transport.Encode(21)
	out, err := m.HandleCall("Double", arg)
	if err != nil {
		t.Fatalf("Double: %v", err)
	}
	var got int
	if err := transport.Decode(out, &got); err != nil || got != 42 {
		t.Fatalf("Double = %d, %v", got, err)
	}
	if _, err := m.HandleCall("Missing", nil); err == nil {
		t.Fatal("unknown method succeeded")
	}
	none, _ := transport.Encode(struct{}{})
	if _, err := m.HandleCall("Fail", none); err == nil || err.Error() != "app error" {
		t.Fatalf("Fail err = %v", err)
	}
	if got := len(m.Methods()); got != 2 {
		t.Fatalf("methods = %d", got)
	}
}
