package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/cluster"
	"elasticrmi/internal/kvstore"
)

// testEnv bundles the substrates a pool needs.
type testEnv struct {
	cluster *cluster.Manager
	store   *kvstore.Cluster
	reg     *RegistryServer
	regCli  *RegistryClient
}

func newTestEnv(t *testing.T, slices int) *testEnv {
	t.Helper()
	mgr, err := cluster.New(cluster.Config{Nodes: slices, SlicesPerNode: 1})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	store, err := kvstore.NewCluster(1, nil)
	if err != nil {
		t.Fatalf("kvstore: %v", err)
	}
	reg, err := NewRegistryServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	regCli, err := DialRegistry(reg.Addr())
	if err != nil {
		t.Fatalf("registry client: %v", err)
	}
	t.Cleanup(func() {
		regCli.Close()
		reg.Close()
		store.Close()
		mgr.Close()
	})
	return &testEnv{cluster: mgr, store: store, reg: reg, regCli: regCli}
}

func (e *testEnv) deps() Deps {
	return Deps{Cluster: e.cluster, Store: e.store, Registry: e.regCli}
}

// counterObject is a trivial elastic object: a shared counter.
type counterObject struct {
	ctx *MemberContext
	mux *Mux
}

type addArgs struct{ N int64 }
type addReply struct{ Total int64 }

func newCounterFactory() Factory {
	return func(ctx *MemberContext) (Object, error) {
		o := &counterObject{ctx: ctx, mux: NewMux()}
		Handle(o.mux, "Add", func(a addArgs) (addReply, error) {
			total, err := ctx.State.AddInt("total", a.N)
			if err != nil {
				return addReply{}, err
			}
			return addReply{Total: total}, nil
		})
		Handle(o.mux, "Get", func(struct{}) (addReply, error) {
			total, err := ctx.State.GetInt("total")
			if err != nil {
				return addReply{}, err
			}
			return addReply{Total: total}, nil
		})
		Handle(o.mux, "WhoAmI", func(struct{}) (int64, error) {
			return ctx.UID, nil
		})
		return o, nil
	}
}

func (o *counterObject) HandleCall(method string, arg []byte) ([]byte, error) {
	return o.mux.HandleCall(method, arg)
}

func newTestPool(t *testing.T, env *testEnv, cfg Config) *Pool {
	t.Helper()
	if cfg.DrainTimeout == 0 {
		// Shrinks in tests should not sit out the production drain bound.
		cfg.DrainTimeout = time.Second
	}
	pool, err := NewPool(cfg, newCounterFactory(), env.deps())
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

func TestPoolInstantiatesMinMembers(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 3, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	if got := pool.Size(); got != 3 {
		t.Fatalf("pool size = %d, want 3", got)
	}
	if env.cluster.InUse() != 3 {
		t.Fatalf("slices in use = %d, want 3", env.cluster.InUse())
	}
	members := pool.Members()
	for i := 1; i < len(members); i++ {
		if members[i-1].UID >= members[i].UID {
			t.Fatalf("members not sorted by UID: %+v", members)
		}
	}
}

func TestPoolRejectsTooSmallMin(t *testing.T) {
	env := newTestEnv(t, 4)
	_, err := NewPool(Config{Name: "x", MinPoolSize: 1, MaxPoolSize: 3}, newCounterFactory(), env.deps())
	if err == nil {
		t.Fatal("expected error for MinPoolSize < 2")
	}
}

func TestStubInvokeAndSharedState(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("counter", env.regCli)
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	for i := 1; i <= 10; i++ {
		rep, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1})
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		if rep.Total != int64(i) {
			t.Fatalf("total = %d, want %d", rep.Total, i)
		}
	}
	// Shared state must be visible regardless of which member executes.
	rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rep.Total != 10 {
		t.Fatalf("shared total = %d, want 10", rep.Total)
	}
	_ = pool
}

func TestStubBalancesAcrossMembers(t *testing.T) {
	env := newTestEnv(t, 8)
	newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	stub, err := LookupStub("counter", env.regCli)
	if err != nil {
		t.Fatalf("LookupStub: %v", err)
	}
	defer stub.Close()

	seen := make(map[int64]int)
	for i := 0; i < 30; i++ {
		uid, err := Call[struct{}, int64](stub, "WhoAmI", struct{}{})
		if err != nil {
			t.Fatalf("WhoAmI: %v", err)
		}
		seen[uid]++
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin hit %d members, want 3: %v", len(seen), seen)
	}
	for uid, n := range seen {
		if n != 10 {
			t.Fatalf("member %d got %d calls, want 10 (round robin)", uid, n)
		}
	}
}

func TestManualResizeGrowAndShrink(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	if err := pool.Resize(3); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if got := pool.Size(); got != 5 {
		t.Fatalf("size after grow = %d, want 5", got)
	}
	if err := pool.Resize(-2); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if got := pool.Size(); got != 3 {
		t.Fatalf("size after shrink = %d, want 3", got)
	}
	if env.cluster.InUse() != 3 {
		t.Fatalf("slices in use = %d, want 3", env.cluster.InUse())
	}
	// Resize below the minimum clamps at MinPoolSize.
	if err := pool.Resize(-10); err != nil {
		t.Fatalf("shrink clamp: %v", err)
	}
	if got := pool.Size(); got != 2 {
		t.Fatalf("size after clamped shrink = %d, want 2", got)
	}
}

func TestInvocationsSurviveScaleDown(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	if err := pool.Resize(4); err != nil {
		t.Fatalf("grow: %v", err)
	}
	stub, err := LookupStub("counter", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	stopCh := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := pool.Resize(-4); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stopCh)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("invocation failed during scale-down: %v", err)
	}
	if got := pool.Size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

func TestPoolExhaustedClusterGrantsFewer(t *testing.T) {
	env := newTestEnv(t, 3)
	pool := newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 2, MaxPoolSize: 10,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	// Cluster has 3 slices; growing by 5 should grant only 1 more.
	if err := pool.Resize(5); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if got := pool.Size(); got != 3 {
		t.Fatalf("size = %d, want 3 (cluster capacity)", got)
	}
	// Fully exhausted: further growth reports no capacity.
	err := pool.Resize(1)
	if err == nil || !errors.Is(err, cluster.ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestRegistryRebindTracksMembership(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "counter", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	eps, err := env.regCli.Lookup("counter")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if len(eps) != 2 {
		t.Fatalf("bound endpoints = %d, want 2", len(eps))
	}
	if eps[0] != pool.SentinelAddr() {
		t.Fatalf("first endpoint %s is not the sentinel %s", eps[0], pool.SentinelAddr())
	}
	if err := pool.Resize(2); err != nil {
		t.Fatalf("grow: %v", err)
	}
	eps, err = env.regCli.Lookup("counter")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if len(eps) != 4 {
		t.Fatalf("bound endpoints = %d, want 4", len(eps))
	}
}
