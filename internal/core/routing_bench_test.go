package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/route"
	"elasticrmi/internal/transport"
)

// Routing-strategy benchmarks: the tail-latency and locality figures behind
// BENCH_routing.json (scripts/bench.sh). They run stubs against bare
// transport servers — no pool runtime — so what is measured is purely the
// picker: round-robin vs power-of-two-choices under a skewed pool, and
// key-affinity vs strategy routing against member-local caches.

// startRoutingPool starts one transport server per handler, publishes a
// shared epoch-1 table over them and returns a stub routing across them.
func startRoutingPool(b *testing.B, handlers []transport.Handler, opts ...StubOption) *Stub {
	b.Helper()
	table := route.Table{Epoch: 1}
	addrs := make([]string, 0, len(handlers))
	servers := make([]*transport.Server, 0, len(handlers))
	for i, h := range handlers {
		srv, err := transport.Serve("127.0.0.1:0", h)
		if err != nil {
			b.Fatalf("Serve: %v", err)
		}
		b.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
		table.Members = append(table.Members, route.Member{
			Addr: srv.Addr(), UID: int64(i + 1), Weight: route.DefaultWeight,
		})
	}
	for _, srv := range servers {
		srv.SetRouteSource(func() route.Table { return table })
	}
	stub, err := NewStub("bench", addrs)
	if err != nil {
		b.Fatalf("NewStub: %v", err)
	}
	for _, o := range opts {
		o(stub)
	}
	b.Cleanup(func() { stub.Close() })
	// Land the epoch-1 table (with UIDs) before measuring.
	if err := stub.Refresh(); err != nil {
		b.Fatalf("Refresh: %v", err)
	}
	return stub
}

// benchSkewed measures invocation latency against a pool with one degraded
// member (10x the service time of the others) and reports the p50/p99 tail.
// Round-robin keeps feeding the slow member 1/n of all traffic; p2c sees
// its backlog through the in-flight counts and routes around it. Service
// times are multi-millisecond sleeps so the figure survives coarse timer
// granularity on small (single-CPU) CI machines, and the client runs a
// fixed 8-way concurrency so in-flight counts exist regardless of
// GOMAXPROCS.
func benchSkewed(b *testing.B, opts ...StubOption) {
	const fast, slow = 2 * time.Millisecond, 20 * time.Millisecond
	delays := []time.Duration{slow, fast, fast, fast}
	handlers := make([]transport.Handler, len(delays))
	for i, d := range delays {
		d := d
		// Each member is single-threaded (one slice in the paper's terms):
		// concurrent arrivals queue behind the mutex, so routing load onto
		// the degraded member costs queueing delay, not just service time.
		var sem sync.Mutex
		handlers[i] = func(req *transport.Request) ([]byte, error) {
			sem.Lock()
			time.Sleep(d)
			sem.Unlock()
			return req.Payload, nil
		}
	}
	stub := startRoutingPool(b, handlers, opts...)

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	payload := []byte("x")
	b.SetParallelism(max(8/runtime.GOMAXPROCS(0), 1))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		for pb.Next() {
			start := time.Now()
			if _, err := stub.Invoke("Echo", payload); err != nil {
				b.Errorf("Invoke: %v", err)
				return
			}
			local = append(local, time.Since(start))
		}
		mu.Lock()
		latencies = append(latencies, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	b.ReportMetric(float64(latencies[len(latencies)*50/100].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(latencies[len(latencies)*99/100].Nanoseconds()), "p99-ns")
}

func BenchmarkRoutingSkewedRR(b *testing.B)  { benchSkewed(b) }
func BenchmarkRoutingSkewedP2C(b *testing.B) { benchSkewed(b, WithPowerOfTwoBalancing()) }

// cachingMember simulates a member whose speed depends on locality: a
// member-local cache with bounded capacity, where a miss costs 50x a hit.
type cachingMember struct {
	mu     sync.Mutex
	cache  map[string]struct{}
	cap    int
	hits   atomic.Int64
	misses atomic.Int64
}

func (c *cachingMember) handle(req *transport.Request) ([]byte, error) {
	key := string(req.Payload)
	c.mu.Lock()
	_, hit := c.cache[key]
	if !hit {
		if len(c.cache) >= c.cap {
			for k := range c.cache { // evict an arbitrary resident entry
				delete(c.cache, k)
				break
			}
		}
		c.cache[key] = struct{}{}
	}
	c.mu.Unlock()
	// Multi-millisecond service times: coarse single-CPU timers would
	// otherwise flatten the hit/miss gap (see benchSkewed).
	if hit {
		c.hits.Add(1)
		time.Sleep(2 * time.Millisecond)
	} else {
		c.misses.Add(1)
		time.Sleep(20 * time.Millisecond)
	}
	return req.Payload, nil
}

// benchHotKey runs a 32-key working set against 4 members whose caches
// hold 16 entries each. Key affinity partitions the keyspace so every
// member's share fits its cache (all hits after warmup); strategy routing
// sprays all 32 keys over every member and thrashes the caches. Keys are
// drawn randomly so no aliasing between the round-robin rotation and the
// keyspace can mask the thrash.
func benchHotKey(b *testing.B, keyed bool) {
	const members, capacity, keys = 4, 16, 32
	caches := make([]*cachingMember, members)
	handlers := make([]transport.Handler, members)
	for i := range handlers {
		caches[i] = &cachingMember{cache: make(map[string]struct{}), cap: capacity}
		handlers[i] = caches[i].handle
	}
	stub := startRoutingPool(b, handlers)
	keyset := make([]string, keys)
	for i := range keyset {
		keyset[i] = fmt.Sprintf("key-%02d", i)
	}

	b.SetParallelism(max(8/runtime.GOMAXPROCS(0), 1))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		for pb.Next() {
			key := keyset[rng.IntN(keys)]
			var err error
			if keyed {
				_, err = stub.InvokeKeyed("Get", key, []byte(key))
			} else {
				_, err = stub.Invoke("Get", []byte(key))
			}
			if err != nil {
				b.Errorf("invoke: %v", err)
				return
			}
		}
	})
	b.StopTimer()
	var hits, misses int64
	for _, c := range caches {
		hits += c.hits.Load()
		misses += c.misses.Load()
	}
	if hits+misses > 0 {
		b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit-%")
	}
}

func BenchmarkRoutingHotKeySpray(b *testing.B)    { benchHotKey(b, false) }
func BenchmarkRoutingHotKeyAffinity(b *testing.B) { benchHotKey(b, true) }
