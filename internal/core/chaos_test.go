package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosResizeUnderLoad drives continuous invocations while the pool is
// resized randomly between its bounds. Invariants:
//   - no invocation is lost or fails (drain+redirect make resizing
//     invisible to clients);
//   - the shared counter equals the number of acknowledged adds (no
//     duplicated or dropped execution);
//   - slices are fully accounted for at the end.
func TestChaosResizeUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	env := newTestEnv(t, 12)
	pool := newTestPool(t, env, Config{
		Name: "chaos", MinPoolSize: 2, MaxPoolSize: 8,
		BurstInterval: time.Hour,
	})
	stub, err := LookupStub("chaos", env.regCli)
	if err != nil {
		t.Fatalf("stub: %v", err)
	}
	defer stub.Close()

	const workers = 6
	var acked atomic.Int64
	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := Call[addArgs, addReply](stub, "Add", addArgs{N: 1}); err != nil {
					failures.Add(1)
					return
				}
				acked.Add(1)
			}
		}()
	}

	// Random resizes for ~1.5 s.
	rng := rand.New(rand.NewSource(42)) //nolint:gosec // deterministic chaos
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		delta := rng.Intn(5) - 2 // -2..+2
		if delta != 0 {
			_ = pool.Resize(delta)
		}
		pool.BroadcastNow()
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d invocations failed during resizing", f)
	}
	rep, err := Call[struct{}, addReply](stub, "Get", struct{}{})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rep.Total != acked.Load() {
		t.Fatalf("counter = %d, acked = %d (lost or duplicated executions)", rep.Total, acked.Load())
	}
	if got := pool.Size(); got < 2 || got > 8 {
		t.Fatalf("pool size %d outside bounds", got)
	}
	if env.cluster.InUse() != pool.Size() {
		t.Fatalf("slice accounting: %d in use vs %d members", env.cluster.InUse(), pool.Size())
	}
}
