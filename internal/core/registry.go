package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"elasticrmi/internal/transport"
)

// The ElasticRMI registry is the naming service stubs use to locate an
// elastic object pool, playing the role of the RMI registry. A binding maps
// the elastic class name to the current endpoints of the pool, sentinel
// first; the pool manager refreshes the binding as membership changes.

// registryService is the transport service name.
const registryService = "registry"

type (
	bindReq struct {
		Name      string
		Endpoints []string
	}
	bindReply   struct{}
	lookupReq   struct{ Name string }
	lookupReply struct{ Endpoints []string }
	unbindReq   struct{ Name string }
	unbindReply struct{}
	listReq     struct{}
	listReply   struct{ Names []string }
)

const codeNotBound = "NOT_BOUND"

// RegistryServer is a standalone naming service.
type RegistryServer struct {
	srv *transport.Server

	mu       sync.Mutex
	bindings map[string][]string
}

// NewRegistryServer starts a registry on addr (":0" for any port).
func NewRegistryServer(addr string) (*RegistryServer, error) {
	r := &RegistryServer{bindings: make(map[string][]string)}
	srv, err := transport.Serve(addr, r.handle)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r.srv = srv
	return r, nil
}

// Addr returns the registry's listen address.
func (r *RegistryServer) Addr() string { return r.srv.Addr() }

// Close shuts the registry down.
func (r *RegistryServer) Close() error { return r.srv.Close() }

func (r *RegistryServer) handle(req *transport.Request) ([]byte, error) {
	if req.Service != registryService {
		return nil, fmt.Errorf("unknown service %q", req.Service)
	}
	// Every successful reply below is transport.Encode output handed over
	// outright, so the transport releases the slab back to the arena after
	// the write. Without this every registry operation leaked its reply
	// slab out of the arena.
	req.ReleaseReply = true
	switch req.Method {
	case "Bind":
		var b bindReq
		if err := transport.Decode(req.Payload, &b); err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.bindings[b.Name] = append([]string(nil), b.Endpoints...)
		r.mu.Unlock()
		return transport.Encode(bindReply{})
	case "Lookup":
		var l lookupReq
		if err := transport.Decode(req.Payload, &l); err != nil {
			return nil, err
		}
		r.mu.Lock()
		eps, ok := r.bindings[l.Name]
		out := append([]string(nil), eps...)
		r.mu.Unlock()
		if !ok {
			return nil, errors.New(codeNotBound)
		}
		return transport.Encode(lookupReply{Endpoints: out})
	case "Unbind":
		var u unbindReq
		if err := transport.Decode(req.Payload, &u); err != nil {
			return nil, err
		}
		r.mu.Lock()
		delete(r.bindings, u.Name)
		r.mu.Unlock()
		return transport.Encode(unbindReply{})
	case "List":
		r.mu.Lock()
		names := make([]string, 0, len(r.bindings))
		for n := range r.bindings {
			names = append(names, n)
		}
		r.mu.Unlock()
		return transport.Encode(listReply{Names: names})
	default:
		return nil, fmt.Errorf("unknown method %q", req.Method)
	}
}

// RegistryClient talks to a RegistryServer.
type RegistryClient struct {
	mu   sync.Mutex
	conn *transport.Client
}

// DialRegistry connects to the registry at addr.
func DialRegistry(addr string) (*RegistryClient, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("registry client: %w", err)
	}
	return &RegistryClient{conn: conn}, nil
}

func (c *RegistryClient) call(method string, req, reply interface{}) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if err := conn.CallDecode(registryService, method, req, reply, 5*time.Second); err != nil {
		var remote *transport.RemoteError
		if errors.As(err, &remote) && remote.Msg == codeNotBound {
			return ErrNotBound
		}
		return err
	}
	return nil
}

// Bind associates name with the pool endpoints (sentinel first).
func (c *RegistryClient) Bind(name string, endpoints []string) error {
	var rep bindReply
	return c.call("Bind", bindReq{Name: name, Endpoints: endpoints}, &rep)
}

// Lookup resolves name to the pool endpoints.
func (c *RegistryClient) Lookup(name string) ([]string, error) {
	var rep lookupReply
	if err := c.call("Lookup", lookupReq{Name: name}, &rep); err != nil {
		return nil, err
	}
	return rep.Endpoints, nil
}

// Unbind removes a binding.
func (c *RegistryClient) Unbind(name string) error {
	var rep unbindReply
	return c.call("Unbind", unbindReq{Name: name}, &rep)
}

// List returns all bound names.
func (c *RegistryClient) List() ([]string, error) {
	var rep listReply
	if err := c.call("List", listReq{}, &rep); err != nil {
		return nil, err
	}
	return rep.Names, nil
}

// Close releases the connection.
func (c *RegistryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
