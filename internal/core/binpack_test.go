package core

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPlanRebalanceBasic(t *testing.T) {
	loads := []MemberLoad{
		{Addr: "a", Pending: 100},
		{Addr: "b", Pending: 10},
		{Addr: "c", Pending: 10},
	}
	plans := PlanRebalance(loads, 2.0)
	if len(plans) != 1 {
		t.Fatalf("plans = %+v, want 1", plans)
	}
	p := plans[0]
	if p.From != "a" {
		t.Fatalf("overloaded = %s, want a", p.From)
	}
	if p.Fraction <= 0 || p.Fraction > 1 {
		t.Fatalf("fraction = %v", p.Fraction)
	}
	// Mean is 40; a's excess is 60; spare is 30+30; all 60 packable.
	total := 0
	for _, n := range p.Amounts {
		total += n
	}
	if total != 60 {
		t.Fatalf("moved %d, want 60", total)
	}
}

func TestPlanRebalanceNoOverload(t *testing.T) {
	loads := []MemberLoad{{Addr: "a", Pending: 10}, {Addr: "b", Pending: 12}}
	if plans := PlanRebalance(loads, 2.0); plans != nil {
		t.Fatalf("plans = %+v, want none", plans)
	}
}

func TestPlanRebalanceAllIdle(t *testing.T) {
	loads := []MemberLoad{{Addr: "a"}, {Addr: "b"}}
	if plans := PlanRebalance(loads, 2.0); plans != nil {
		t.Fatalf("plans = %+v, want none (zero mean)", plans)
	}
}

func TestPlanRebalanceSingleMember(t *testing.T) {
	if plans := PlanRebalance([]MemberLoad{{Addr: "a", Pending: 100}}, 2.0); plans != nil {
		t.Fatalf("plans = %+v, want none", plans)
	}
}

func TestPlanRebalanceFirstFitOrder(t *testing.T) {
	// Bins are taken in address order (first fit): "b" fills before "c".
	loads := []MemberLoad{
		{Addr: "z", Pending: 90},
		{Addr: "c", Pending: 0},
		{Addr: "b", Pending: 0},
	}
	plans := PlanRebalance(loads, 2.0)
	if len(plans) != 1 {
		t.Fatalf("plans = %+v", plans)
	}
	// Mean 30: z's excess is 60, spare is b:30, c:30. First fit fills b
	// fully before touching c.
	if plans[0].Amounts["b"] != 30 || plans[0].Amounts["c"] != 30 {
		t.Fatalf("amounts = %+v", plans[0].Amounts)
	}
	if plans[0].Targets[0] != "b" {
		t.Fatalf("first target = %s, want b", plans[0].Targets[0])
	}
}

// Properties: plans never move more than the member's pending count, never
// target the overloaded member itself, and fractions stay in (0, 1].
func TestPlanRebalanceProperties(t *testing.T) {
	prop := func(pendings []uint8) bool {
		if len(pendings) < 2 {
			return true
		}
		loads := make([]MemberLoad, len(pendings))
		for i, p := range pendings {
			loads[i] = MemberLoad{Addr: fmt.Sprintf("m-%03d", i), Pending: int(p)}
		}
		for _, plan := range PlanRebalance(loads, 2.0) {
			if plan.Fraction <= 0 || plan.Fraction > 1 {
				return false
			}
			var from *MemberLoad
			for i := range loads {
				if loads[i].Addr == plan.From {
					from = &loads[i]
					break
				}
			}
			if from == nil {
				return false
			}
			moved := 0
			for target, n := range plan.Amounts {
				if target == plan.From || n <= 0 {
					return false
				}
				moved += n
			}
			if moved > from.Pending {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
