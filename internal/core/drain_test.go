package core

import (
	"errors"
	"testing"
	"time"

	"elasticrmi/internal/transport"
)

// TestDrainingSkeletonRedirectsDirectCalls talks to a skeleton directly
// (bypassing the stub) while its member drains: the skeleton must answer
// with a redirect listing the surviving members (§2.5), which is what the
// stub transparently follows.
func TestDrainingSkeletonRedirectsDirectCalls(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "draintest", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	})
	if err := pool.Resize(1); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	eps := pool.Endpoints()
	victim := eps[len(eps)-1] // highest UID: the one shrink removes

	// Start the shrink; the roster is refreshed before draining, so the
	// victim knows where to point.
	done := make(chan error, 1)
	go func() { done <- pool.Resize(-1) }()

	// Talk to the victim directly while it drains. Depending on timing we
	// observe either a redirect or a closed connection — both are the
	// "removed member" signals the stub handles.
	c, err := transport.Dial(victim)
	if err == nil {
		defer c.Close()
		payload := transport.MustEncode(addArgs{N: 1})
		deadline := time.Now().Add(2 * time.Second)
		sawRedirect := false
		for time.Now().Before(deadline) {
			_, callErr := c.Call("draintest", "Add", payload, time.Second)
			var redirect *transport.RedirectError
			if errors.As(callErr, &redirect) {
				sawRedirect = true
				if len(redirect.Targets) == 0 {
					t.Fatal("redirect with no targets")
				}
				for _, target := range redirect.Targets {
					if target == victim {
						t.Fatal("redirect points at the draining member itself")
					}
				}
				break
			}
			if callErr != nil {
				break // connection torn down: member fully removed
			}
		}
		_ = sawRedirect // either observation is acceptable; assertions above
	}
	if err := <-done; err != nil {
		t.Fatalf("Resize(-1): %v", err)
	}
	if got := pool.Size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

// TestConfigValidationTable exercises every Config rejection path.
func TestConfigValidationTable(t *testing.T) {
	env := newTestEnv(t, 4)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty name", Config{MinPoolSize: 2, MaxPoolSize: 4}},
		{"min below two", Config{Name: "x", MinPoolSize: 1, MaxPoolSize: 4}},
		{"max below min", Config{Name: "x", MinPoolSize: 3, MaxPoolSize: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPool(tc.cfg, newCounterFactory(), env.deps()); err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
		})
	}
	if _, err := NewPool(Config{Name: "x", MinPoolSize: 2, MaxPoolSize: 4}, nil, env.deps()); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := NewPool(Config{Name: "x", MinPoolSize: 2, MaxPoolSize: 4}, newCounterFactory(), Deps{}); err == nil {
		t.Fatal("empty deps accepted")
	}
}
