package core

import (
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/route"
	"elasticrmi/internal/transport"
)

// TestDrainingSkeletonServesAndSteersDirectCalls talks to a skeleton
// directly (bypassing the stub) while its member drains. Under epoch
// routing the draining member does not refuse: it keeps serving whatever
// reaches it, and every reply piggybacks the post-shrink routing table —
// which no longer lists the member — so the caller is steered away within
// one round-trip (§2.5 without the redirect bounce).
func TestDrainingSkeletonServesAndSteersDirectCalls(t *testing.T) {
	env := newTestEnv(t, 8)
	pool := newTestPool(t, env, Config{
		Name: "draintest", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
		DrainTimeout: 2 * time.Second,
	})
	if err := pool.Resize(1); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	eps := pool.Endpoints()
	victim := eps[len(eps)-1] // highest UID: the one shrink removes

	// Start the shrink; the view is stamped before draining, so the victim
	// already holds the table that excludes it.
	done := make(chan error, 1)
	go func() { done <- pool.Resize(-1) }()

	// Talk to the victim directly while it drains. Depending on timing we
	// observe served calls carrying a corrective route update, or a closed
	// connection — both are the "removed member" signals the stub handles.
	var mu sync.Mutex
	var updates []route.Table
	c, err := transport.DialOpts(victim, transport.DialOptions{
		OnRouteUpdate: func(tab route.Table) {
			mu.Lock()
			updates = append(updates, tab)
			mu.Unlock()
		},
	})
	if err == nil {
		defer c.Close()
		// A reply may carry a pre-shrink table if the call lands in the
		// instant before the victim receives the shrunken one; keep calling
		// until a table that excludes the victim arrives (the corrective
		// signal) or the connection is torn down (member fully removed).
		excludesVictim := func(u route.Table) bool {
			for _, m := range u.Members {
				if m.Addr == victim && !m.Draining {
					return false
				}
			}
			return true
		}
		payload := transport.MustEncode(addArgs{N: 1})
		corrected, severed := false, false
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && !corrected && !severed {
			if _, callErr := c.Call("draintest", "Add", payload, time.Second); callErr != nil {
				severed = true
				break
			}
			mu.Lock()
			for _, u := range updates {
				if excludesVictim(u) {
					corrected = true
				}
			}
			mu.Unlock()
		}
		if !corrected && !severed {
			t.Error("draining member neither steered the caller away nor closed the connection")
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Resize(-1): %v", err)
	}
	if got := pool.Size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

// TestConfigValidationTable exercises every Config rejection path.
func TestConfigValidationTable(t *testing.T) {
	env := newTestEnv(t, 4)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty name", Config{MinPoolSize: 2, MaxPoolSize: 4}},
		{"min below two", Config{Name: "x", MinPoolSize: 1, MaxPoolSize: 4}},
		{"max below min", Config{Name: "x", MinPoolSize: 3, MaxPoolSize: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPool(tc.cfg, newCounterFactory(), env.deps()); err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
		})
	}
	if _, err := NewPool(Config{Name: "x", MinPoolSize: 2, MaxPoolSize: 4}, nil, env.deps()); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := NewPool(Config{Name: "x", MinPoolSize: 2, MaxPoolSize: 4}, newCounterFactory(), Deps{}); err == nil {
		t.Fatal("empty deps accepted")
	}
}
