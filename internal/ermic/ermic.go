// Package ermic is the runtime support library for ermi-gen's generated
// binary codecs (the `//ermi:codec` annotation). Generated MarshalERMI /
// UnmarshalERMI methods call these helpers for the primitive wire shapes —
// varints, zigzag-signed varints, length-prefixed byte strings — so the
// generated code stays small and the hostile-input guards live in one place.
//
// Wire shapes:
//
//   - unsigned integers: uvarint (encoding/binary layout)
//   - signed integers:   zigzag-mapped uvarint, so small negatives stay small
//   - floats:            fixed 4/8-byte little-endian IEEE 754 bit patterns
//   - bool:              one byte, 0 or 1
//   - string, []byte:    uvarint length prefix + raw bytes
//   - slices, maps:      uvarint element count + elements
//
// Every Consume helper is total on arbitrary input: truncated or hostile
// bytes return ErrMalformed, never panic, and never allocate proportionally
// to an attacker-declared length (declared lengths and counts are checked
// against the bytes actually present before any allocation).
package ermic

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrMalformed is returned for any input a generated codec cannot decode:
// truncated fields, hostile declared lengths, or trailing garbage.
var ErrMalformed = errors.New("ermic: malformed codec payload")

// SizeUvarint returns the encoded size of x.
func SizeUvarint(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// SizeVarint returns the encoded size of zigzag-mapped x.
func SizeVarint(x int64) int {
	return SizeUvarint(zigzag(x))
}

// SizeBytes returns the encoded size of a length-prefixed byte string of n
// bytes.
func SizeBytes(n int) int {
	return SizeUvarint(uint64(n)) + n
}

func zigzag(x int64) uint64   { return uint64(x<<1) ^ uint64(x>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUvarint appends x to b.
func AppendUvarint(b []byte, x uint64) []byte {
	return binary.AppendUvarint(b, x)
}

// AppendVarint appends zigzag-mapped x to b.
func AppendVarint(b []byte, x int64) []byte {
	return binary.AppendUvarint(b, zigzag(x))
}

// AppendBytes appends a length-prefixed byte string to b.
func AppendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// AppendString appends a length-prefixed string to b.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBool appends one byte (0 or 1) to b.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ConsumeUvarint consumes a uvarint from b.
func ConsumeUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrMalformed
	}
	return x, b[n:], nil
}

// ConsumeVarint consumes a zigzag-mapped varint from b.
func ConsumeVarint(b []byte) (int64, []byte, error) {
	u, rest, err := ConsumeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	return unzigzag(u), rest, nil
}

// ConsumeBytesView consumes a length-prefixed byte string from b without
// copying: the returned slice aliases b. A declared length beyond the bytes
// present is malformed, so the view can never read past the input.
func ConsumeBytesView(b []byte) ([]byte, []byte, error) {
	n, rest, err := ConsumeUvarint(b)
	if err != nil || n > uint64(len(rest)) {
		return nil, nil, ErrMalformed
	}
	return rest[:n:n], rest[n:], nil
}

// ConsumeString consumes a length-prefixed string from b, copying it out of
// the input buffer (strings outlive transport frames).
func ConsumeString(b []byte) (string, []byte, error) {
	v, rest, err := ConsumeBytesView(b)
	if err != nil {
		return "", nil, err
	}
	return string(v), rest, nil
}

// ConsumeBool consumes one bool byte from b. Any value other than 0 or 1 is
// malformed (it would break marshal/unmarshal round-trip fidelity).
func ConsumeBool(b []byte) (bool, []byte, error) {
	if len(b) == 0 || b[0] > 1 {
		return false, nil, ErrMalformed
	}
	return b[0] == 1, b[1:], nil
}

// AppendFloat32 appends v's IEEE 754 bit pattern as 4 little-endian bytes.
func AppendFloat32(b []byte, v float32) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
}

// AppendFloat64 appends v's IEEE 754 bit pattern as 8 little-endian bytes.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// ConsumeFloat32 consumes a fixed 4-byte float from b.
func ConsumeFloat32(b []byte) (float32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrMalformed
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b)), b[4:], nil
}

// ConsumeFloat64 consumes a fixed 8-byte float from b.
func ConsumeFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrMalformed
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// ConsumeCount consumes an element count for a slice or map and guards it
// against allocation bombs: every element of any codec type occupies at
// least one encoded byte, so a declared count larger than the remaining
// input is provably hostile and rejected before any allocation.
func ConsumeCount(b []byte) (int, []byte, error) {
	n, rest, err := ConsumeUvarint(b)
	if err != nil || n > uint64(len(rest)) {
		return 0, nil, ErrMalformed
	}
	return int(n), rest, nil
}
