package liveeval_test

import (
	"context"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"elasticrmi/internal/agility"
	"elasticrmi/internal/apps/cache"
	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
	"elasticrmi/internal/liveeval"
	"elasticrmi/internal/workload"
)

// TestLivePoolTracksWorkload runs the real runtime under a compressed
// abrupt pattern (the paper's Fig. 7a shape) and checks the live SPEC
// agility. The assertions mirror the paper's claims at live scale:
//
//   - the pool grows under the peak and shrinks after it (elasticity);
//   - its measured agility beats the overprovisioned deployment (capacity
//     fixed at the maximum), the paper's headline comparison;
//   - live provisioning intervals are tiny (well under the paper's 30 s).
func TestLivePoolTracksWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("live evaluation skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("live timing measurement skipped under the race detector")
	}
	const maxPool = 8
	env := ermitest.New(t, 12)
	// Implicit elasticity: CPU-derived scaling with a small slice
	// reservation so the busy time of real loopback calls moves the
	// utilization needle.
	pool := env.StartPool(t, core.Config{
		Name: "live-cache", MinPoolSize: 2, MaxPoolSize: maxPool,
		BurstInterval: 250 * time.Millisecond,
		SliceCPUs:     0.01,
	}, cache.New(cache.Config{Mode: cache.Implicit}))
	stub := env.Stub(t, "live-cache")

	const (
		peakRPS   = 250.0
		duration  = 8 * time.Second
		perMember = 30.0 // approximate per-member rate at the 90% CPU trigger
	)
	pattern := workload.Abrupt(peakRPS)
	ctx, cancel := context.WithTimeout(context.Background(), duration+2*time.Second)
	defer cancel()

	var seq atomic.Int64
	res := liveeval.Run(ctx, liveeval.Config{
		Pool:          pool,
		Pattern:       pattern,
		Speedup:       float64(pattern.Duration()) / float64(duration),
		RateScale:     1,
		RatePerMember: perMember,
		SampleEvery:   100 * time.Millisecond,
	}, func() error {
		n := seq.Add(1)
		key := "k" + strconv.FormatInt(n%64, 10)
		if n%4 == 0 {
			_, err := core.Call[cache.PutArgs, cache.PutReply](stub, cache.MethodPut,
				cache.PutArgs{Key: key, Value: []byte("v")})
			return err
		}
		_, err := core.Call[cache.GetArgs, cache.GetReply](stub, cache.MethodGet, cache.GetArgs{Key: key})
		return err
	})

	if len(res.Samples) < 20 {
		t.Fatalf("only %d samples collected", len(res.Samples))
	}
	live := res.AvgAgility()

	// Counterfactual baselines over the same requirement series.
	overprovisioned := make([]agility.Sample, len(res.Samples))
	for i, s := range res.Samples {
		overprovisioned[i] = agility.Sample{At: s.At, CapProv: maxPool, ReqMin: s.ReqMin}
	}
	overAgility := agility.Agility(overprovisioned)

	if live >= overAgility {
		t.Fatalf("live agility %.2f >= overprovisioned %.2f: elasticity bought nothing", live, overAgility)
	}

	// Elasticity in both directions.
	peakCap, endCap := 0, 0
	for _, s := range res.Samples {
		if s.CapProv > peakCap {
			peakCap = s.CapProv
		}
	}
	endCap = res.Samples[len(res.Samples)-1].CapProv
	if peakCap <= 2 {
		t.Fatal("pool never grew beyond the minimum during the peak")
	}
	if endCap >= peakCap {
		t.Fatalf("pool did not shrink after the peak (peak %d, end %d)", peakCap, endCap)
	}

	// Live provisioning intervals are milliseconds.
	if max := agility.MaxLatency(res.Provisioning); max > 5*time.Second {
		t.Fatalf("live provisioning latency %v", max)
	}
}
