//go:build race

package liveeval_test

// raceDetectorEnabled reports that this binary was built with -race: the
// detector inflates latencies by 5-15x, which invalidates timing-based
// elasticity measurements.
const raceDetectorEnabled = true
