//go:build !race

package liveeval_test

const raceDetectorEnabled = false
