// Package liveeval measures SPEC elasticity metrics against the *live*
// ElasticRMI runtime — the bridge between the deployment simulator
// (internal/benchsim, which regenerates the paper's 450-minute figures) and
// the real system: a real elastic pool on loopback TCP serves a
// time-compressed replay of a paper workload pattern while the harness
// samples provisioned capacity (the pool size) against the capacity the
// current offered load requires, producing the same agility.Sample series
// the figures plot.
package liveeval

import (
	"context"
	"math"
	"time"

	"elasticrmi/internal/agility"
	"elasticrmi/internal/core"
	"elasticrmi/internal/workload"
)

// Config describes one live measurement run.
type Config struct {
	// Pool is the elastic pool under measurement.
	Pool *core.Pool
	// Pattern is the workload shape being replayed (its Rate feeds ReqMin).
	Pattern workload.Pattern
	// Speedup is the time compression used by the generator (pattern
	// duration / wall duration).
	Speedup float64
	// RatePerMember is the offered load one member absorbs at the QoS
	// target, in requests/second *of the scaled generator* (i.e. after
	// RateScale).
	RatePerMember float64
	// RateScale is the generator's rate scaling, applied to Pattern.Rate
	// before comparing against RatePerMember.
	RateScale float64
	// SampleEvery is the wall-clock sampling interval. Default 100ms.
	SampleEvery time.Duration
}

// Result is the live measurement outcome.
type Result struct {
	Samples []agility.Sample
	// Provisioning holds the pool's scale-up events observed during the
	// run.
	Provisioning []agility.ProvisioningEvent
}

// AvgAgility returns the SPEC agility of the run.
func (r Result) AvgAgility() float64 { return agility.Agility(r.Samples) }

// reqMin converts an offered (scaled) rate into the minimum member count.
func reqMin(rate, perMember float64) int {
	if perMember <= 0 {
		return 2
	}
	req := int(math.Ceil(rate / perMember))
	if req < 2 {
		req = 2
	}
	return req
}

// Run replays the pattern against the pool with the given request function
// until ctx is done or the pattern completes, sampling capacity on the way.
func Run(ctx context.Context, cfg Config, fn func() error) Result {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
	gen := &workload.Generator{
		Pattern:   cfg.Pattern,
		Speedup:   cfg.Speedup,
		RateScale: cfg.RateScale,
	}

	var res Result
	sampleCtx, stopSampling := context.WithCancel(ctx)
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
			}
			elapsed := time.Since(start)
			virtual := time.Duration(float64(elapsed) * cfg.Speedup)
			if virtual > cfg.Pattern.Duration() {
				return
			}
			offered := cfg.Pattern.Rate(virtual) * cfg.RateScale
			res.Samples = append(res.Samples, agility.Sample{
				At:      virtual,
				CapProv: cfg.Pool.Size(),
				ReqMin:  reqMin(offered, cfg.RatePerMember),
			})
		}
	}()

	gen.Run(ctx, fn)
	stopSampling()
	<-done

	for {
		select {
		case ev := <-cfg.Pool.Events():
			if ev.ProvisioningLatency > 0 {
				res.Provisioning = append(res.Provisioning, agility.ProvisioningEvent{
					At:      time.Duration(float64(time.Since(start)) * cfg.Speedup),
					Latency: ev.ProvisioningLatency,
				})
			}
			continue
		default:
		}
		break
	}
	return res
}
