package route

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// Strategy selects how Pick chooses among the table's routable members.
type Strategy int

const (
	// RoundRobin cycles through members, smoothed by weight (the legacy
	// default): a member with half the weight receives half the picks,
	// interleaved rather than bursted.
	RoundRobin Strategy = iota
	// Random picks uniformly among routable members.
	Random
	// PowerOfTwo samples two distinct members and picks the less loaded
	// one, where load is the table's piggybacked pending count plus the
	// picker's own in-flight count toward that member. Two random probes
	// are enough to avoid hot members with near-best-of-N quality.
	PowerOfTwo
)

// State is a client's view of one pool's routing: the freshest Table it
// has seen, the ring derived from it, per-member in-flight accounting and
// local exclusions (members observed unreachable since the table's epoch).
// All methods are safe for concurrent use.
type State struct {
	epoch atomic.Uint64 // mirror of table.Epoch for lock-free stamping

	mu       sync.Mutex
	table    Table
	ring     *Ring
	excluded map[string]struct{}
	loaded   map[string]int64         // local overload penalties (MarkLoaded)
	inflight map[string]*atomic.Int64 // persists across table installs
	rng      *rand.Rand               // per-instance: no global lock, seedable tests
	rrCur    []int64                  // smooth-WRR current weights, parallel to table.Members
	anyNext  int                      // rotation cursor for PickAny
	advances uint64                   // epoch transitions observed (telemetry/tests)
}

// NewState builds a state holding the given bootstrap table.
func NewState(t Table) *State {
	s := &State{
		excluded: make(map[string]struct{}),
		loaded:   make(map[string]int64),
		inflight: make(map[string]*atomic.Int64),
		rng:      rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
	s.install(t)
	return s
}

// NewSeededState is NewState with a deterministic random source (tests).
func NewSeededState(t Table, seed uint64) *State {
	s := NewState(t)
	s.mu.Lock()
	s.rng = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	s.mu.Unlock()
	return s
}

// install replaces the table unconditionally. Caller holds s.mu or is the
// constructor.
func (s *State) install(t Table) {
	// install runs on the transport read loop (piggybacked updates) while
	// holding the mutex every Pick needs, so it stays O(n): one index map
	// serves both the rotation carry-over and the in-flight cleanup.
	oldIdx := make(map[string]int, len(s.table.Members))
	for i := range s.table.Members {
		oldIdx[s.table.Members[i].Addr] = i
	}
	oldCur := s.rrCur
	s.table = t.Clone()
	s.ring = BuildRing(s.table)
	s.excluded = make(map[string]struct{})
	// Overload penalties die with the old epoch: the new table carries fresh
	// load reports, and a stale penalty would shun a member that recovered.
	s.loaded = make(map[string]int64)
	// Round-robin rotation carries over for members surviving the install:
	// load-refresh tables arrive continuously, and restarting the rotation
	// on each would permanently bias traffic toward the first member.
	s.rrCur = make([]int64, len(s.table.Members))
	current := make(map[string]struct{}, len(s.table.Members))
	for i := range s.table.Members {
		addr := s.table.Members[i].Addr
		current[addr] = struct{}{}
		if j, ok := oldIdx[addr]; ok {
			s.rrCur[i] = oldCur[j]
		}
	}
	// Drop in-flight counters for members that left the table; a counter
	// still referenced by an outstanding release closure stays correct,
	// it is just no longer consulted.
	for addr := range s.inflight {
		if _, ok := current[addr]; !ok {
			delete(s.inflight, addr)
		}
	}
	s.epoch.Store(t.Epoch)
}

// Epoch returns the current table's epoch without locking; it is what the
// transport stamps on every outgoing request.
func (s *State) Epoch() uint64 { return s.epoch.Load() }

// Advance installs t if it is strictly newer than the current table and
// reports whether it did. Installing clears local exclusions: the new
// epoch's membership is authoritative, and a member that was locally
// tombstoned but survived into the new view deserves another chance.
func (s *State) Advance(t Table) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Epoch <= s.table.Epoch {
		return false
	}
	s.install(t)
	s.advances++
	return true
}

// Advances returns how many epoch transitions this state has installed.
func (s *State) Advances() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advances
}

// Table returns a copy of the current table.
func (s *State) Table() Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Clone()
}

// Len returns the current table's member count without copying it (the
// per-invocation attempts bound reads it on every call).
func (s *State) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table.Members)
}

// Exclude locally tombstones addr (observed unreachable). The exclusion
// lasts until a newer table is installed or a Readmit proves it wrong.
func (s *State) Exclude(addr string) {
	s.mu.Lock()
	s.excluded[addr] = struct{}{}
	s.mu.Unlock()
}

// Readmit drops addr's local exclusion and overload penalty. Callers invoke
// it on a successful reply from the member: the reply itself proves the
// member reachable (and no longer shedding), and waiting for a newer table
// instead would leave the member dark for as long as the pool's epoch
// stands still.
func (s *State) Readmit(addr string) {
	s.mu.Lock()
	delete(s.excluded, addr)
	delete(s.loaded, addr)
	s.mu.Unlock()
}

// markLoadedPenalty is the effective-load surcharge one overload reply adds:
// heavier than a single in-flight invocation (an explicit shed is stronger
// evidence of saturation than a queued call), light enough that the member
// re-enters rotation as soon as its neighbours climb.
const markLoadedPenalty = 4

// MarkLoaded records that addr answered with an overload shed: the member is
// alive — excluding it would be wrong — but saturated, so its effective load
// is bumped and the power-of-two picker steers new work at less-loaded
// members until a success (Readmit) or a fresh table clears the penalty.
func (s *State) MarkLoaded(addr string) {
	s.mu.Lock()
	s.loaded[addr] += markLoadedPenalty
	s.mu.Unlock()
}

// Addrs returns the addresses currently eligible for picking (routable and
// not locally excluded).
func (s *State) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.table.Members))
	for i := range s.table.Members {
		if s.usableLocked(i) {
			out = append(out, s.table.Members[i].Addr)
		}
	}
	return out
}

// usableLocked reports whether member i may be picked right now.
func (s *State) usableLocked(i int) bool {
	m := &s.table.Members[i]
	if !routable(m) {
		return false
	}
	_, dead := s.excluded[m.Addr]
	return !dead
}

// Acquire records one in-flight invocation toward addr and returns the
// paired release. The count feeds the power-of-two picker, so callers
// should hold it exactly for the duration of the attempt.
func (s *State) Acquire(addr string) (release func()) {
	s.mu.Lock()
	ctr, ok := s.inflight[addr]
	if !ok {
		ctr = new(atomic.Int64)
		s.inflight[addr] = ctr
	}
	s.mu.Unlock()
	ctr.Add(1)
	var once sync.Once
	return func() { once.Do(func() { ctr.Add(-1) }) }
}

// loadLocked is member i's effective load: the piggybacked report plus
// local in-flight work the report cannot see yet, plus the overload
// penalties of shed replies observed since the table arrived.
func (s *State) loadLocked(i int) int64 {
	m := &s.table.Members[i]
	load := int64(m.Load)
	if ctr, ok := s.inflight[m.Addr]; ok {
		load += ctr.Load()
	}
	load += s.loaded[m.Addr]
	return load
}

// Pick selects one member address under the strategy. ok=false means no
// member is currently usable (all draining or excluded).
func (s *State) Pick(strategy Strategy) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	usable := s.usableIdx()
	if len(usable) == 0 {
		return "", false
	}
	if len(usable) == 1 {
		return s.table.Members[usable[0]].Addr, true
	}
	var idx int
	switch strategy {
	case Random:
		idx = usable[s.rng.IntN(len(usable))]
	case PowerOfTwo:
		ai := s.rng.IntN(len(usable))
		bi := s.rng.IntN(len(usable) - 1)
		if bi == ai {
			bi = len(usable) - 1
		}
		a, b := usable[ai], usable[bi]
		idx = a
		if s.loadLocked(b) < s.loadLocked(a) {
			idx = b
		}
	default:
		idx = s.smoothWRRLocked(usable)
	}
	return s.table.Members[idx].Addr, true
}

// usableIdx collects the indices Pick may choose from. Caller holds s.mu.
func (s *State) usableIdx() []int {
	out := make([]int, 0, len(s.table.Members))
	for i := range s.table.Members {
		if s.usableLocked(i) && s.table.Members[i].Weight > 0 {
			out = append(out, i)
		}
	}
	if len(out) > 0 {
		return out
	}
	// Every routable member is weighted to zero (a pathological plan):
	// fall back to ignoring weights rather than failing the call.
	for i := range s.table.Members {
		if s.usableLocked(i) {
			out = append(out, i)
		}
	}
	return out
}

// smoothWRRLocked runs one step of smooth weighted round-robin (the nginx
// algorithm): add each candidate's weight to its current score, pick the
// highest score, subtract the total. Equal weights degrade to plain
// round-robin; unequal weights interleave proportionally.
func (s *State) smoothWRRLocked(usable []int) int {
	var total int64
	best := usable[0]
	for _, i := range usable {
		w := int64(s.table.Members[i].Weight)
		if w < 1 {
			// Only reachable through the all-weights-zero fallback of
			// usableIdx: treat the candidates as equally weighted so the
			// rotation still rotates instead of pinning the first argmax.
			w = 1
		}
		s.rrCur[i] += w
		total += w
		if s.rrCur[i] > s.rrCur[best] {
			best = i
		}
	}
	s.rrCur[best] -= total
	return best
}

// PickAny returns a routable member ignoring local exclusions, rotating
// through the table. It is the caller's last resort when every member is
// excluded: exclusions only clear when a newer table arrives, and a newer
// table only arrives piggybacked on a reply — so after a transient
// total outage somebody has to send one more request, or the state would
// stay dark against a recovered pool forever.
func (s *State) PickAny() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.table.Members)
	for i := 0; i < n; i++ {
		idx := (s.anyNext + i) % n
		if routable(&s.table.Members[idx]) {
			s.anyNext = (idx + 1) % n
			return s.table.Members[idx].Addr, true
		}
	}
	return "", false
}

// PickKeyed selects the consistent-hash owner of key among usable members:
// the ring owner when healthy, else the next member clockwise, so a key's
// traffic moves to exactly one fallback while its owner is out.
func (s *State) PickKeyed(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.ring.Lookup(key, s.usableLocked)
	if idx < 0 {
		return "", false
	}
	return s.table.Members[idx].Addr, true
}
