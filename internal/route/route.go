// Package route makes routing a first-class, epoch-versioned subsystem
// instead of an emergent property of redirects. The pool runtime stamps
// every membership change with a monotonically increasing epoch and
// publishes a compact Table (epoch, member addresses + UIDs, weights,
// piggybacked load); clients hold a State built from the freshest table
// they have seen and pick a member per call with one of three strategies:
// round-robin (weight-smoothed), power-of-two-choices fed by the
// piggybacked load reports, or consistent-hash key affinity over the
// table's hash ring.
//
// The table travels in-band: requests carry the client's epoch and any
// reply from a member holding a newer table piggybacks the update (see
// internal/transport), so a stale client is corrected on its very next
// reply round-trip instead of bouncing through redirects.
package route

import (
	"hash/fnv"
	"sort"
)

// DefaultWeight is the weight of an unthrottled member. Weights scale the
// share of new invocations a member receives under the round-robin picker;
// the pool runtime lowers a member's weight when its rebalance planning
// decides the member should shed load.
const DefaultWeight = 100

// Member is one routable pool member as published in a Table.
type Member struct {
	Addr string // skeleton (invocation) address
	UID  int64  // pool-unique member identity; stable across tables
	// Weight is the member's relative share of steered invocations
	// (0..DefaultWeight). Zero removes the member from weighted picking
	// while keeping it resolvable (e.g. for in-flight affinity keys).
	Weight int32
	// Load is the member's pending-invocation count as of the table's
	// publication — the MethodStats-style report piggybacked through the
	// pool's broadcast, consumed by the power-of-two-choices picker.
	Load int32
	// Draining marks a member that still serves in-flight work but must
	// not receive new invocations (scale-down exclusion).
	Draining bool
}

// Table is one epoch-versioned routing view. Tables are immutable once
// published; a newer epoch always supersedes an older one, and equal
// epochs are identical by construction (one publisher per pool).
type Table struct {
	Epoch   uint64
	Members []Member
}

// Clone deep-copies the table (Members is freshly allocated).
func (t Table) Clone() Table {
	out := Table{Epoch: t.Epoch}
	if len(t.Members) > 0 {
		out.Members = append(make([]Member, 0, len(t.Members)), t.Members...)
	}
	return out
}

// Seed builds the epoch-zero bootstrap table a client starts from when all
// it knows is a list of addresses (UIDs unknown). The first reply from any
// member piggybacks the real table and supersedes it.
func Seed(addrs []string) Table {
	t := Table{Members: make([]Member, 0, len(addrs))}
	for _, a := range addrs {
		t.Members = append(t.Members, Member{Addr: a, Weight: DefaultWeight})
	}
	return t
}

// routable reports whether m may receive new invocations at all.
func routable(m *Member) bool { return !m.Draining }

// ringVnodes is the number of virtual nodes per member on the hash ring.
// It is deliberately independent of weight: affinity placement must stay
// stable while the runtime throttles a hot member, or every weight change
// would reshuffle keys and destroy the locality affinity exists to create.
const ringVnodes = 64

// ringPoint is one virtual node: the hash owns the arc ending at it.
type ringPoint struct {
	hash uint64
	idx  int // index into the owning table's Members
}

// Ring is a consistent-hash ring over a table's routable members. Hashes
// are FNV-1a 64 over the member identity (addr '#' vnode), so every client
// that holds the same table derives the same ring and the same key
// placement — one owner per key across the whole client population.
type Ring struct {
	points []ringPoint
}

// BuildRing constructs the ring for t, skipping draining members.
func BuildRing(t Table) *Ring {
	r := &Ring{}
	for i := range t.Members {
		m := &t.Members[i]
		if !routable(m) {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(m.Addr))
		h.Write([]byte{'#'})
		base := h.Sum64()
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix(base, uint64(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// mix derives the vnode hash from the member's base hash — a cheap
// splitmix64 round, deterministic across processes.
func mix(base, v uint64) uint64 {
	x := base + v*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// KeyHash hashes an affinity key onto the ring's space. The FNV sum is
// finalized through the splitmix64 rounds: FNV alone leaves near-identical
// short keys ("user-01", "user-02", ...) within a few bits of each other,
// which would pile an application's whole keyspace onto one arc.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix(h.Sum64(), 0)
}

// Lookup walks the ring clockwise from key's hash and returns the index
// (into the table's Members) of the first member for which ok returns
// true. A nil ok accepts every member. Returns -1 when the ring is empty
// or nothing qualifies.
func (r *Ring) Lookup(key string, ok func(idx int) bool) int {
	n := len(r.points)
	if n == 0 {
		return -1
	}
	kh := KeyHash(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= kh })
	// The dedup set is allocated lazily: the hot path — the first candidate
	// qualifies — runs allocation-free.
	var seen map[int]struct{}
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if _, dup := seen[p.idx]; dup {
			continue
		}
		if ok == nil || ok(p.idx) {
			return p.idx
		}
		if seen == nil {
			seen = make(map[int]struct{}, 4)
		}
		seen[p.idx] = struct{}{}
	}
	return -1
}

// Owner returns the index of the member owning key with no filter, -1 on
// an empty ring. It is the shared-ownership primitive (kvstore sharding).
func (r *Ring) Owner(key string) int { return r.Lookup(key, nil) }

// Owners returns the indices of the first n distinct members clockwise
// from key's hash — the key's successor-list replica set. Owners(key, n)[0]
// is the primary (identical to Owner(key)); the remainder are the backups
// in promotion order, so replicated stores agree with every client holding
// the same table on both placement and failover order. Fewer than n
// distinct members on the ring yields a shorter list; an empty ring yields
// nil.
func (r *Ring) Owners(key string, n int) []int {
	np := len(r.points)
	if np == 0 || n <= 0 {
		return nil
	}
	kh := KeyHash(key)
	start := sort.Search(np, func(i int) bool { return r.points[i].hash >= kh })
	out := make([]int, 0, n)
	seen := make(map[int]struct{}, n)
	for i := 0; i < np && len(out) < n; i++ {
		p := r.points[(start+i)%np]
		if _, dup := seen[p.idx]; dup {
			continue
		}
		seen[p.idx] = struct{}{}
		out = append(out, p.idx)
	}
	return out
}
