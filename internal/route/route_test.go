package route

import (
	"fmt"
	"testing"
)

func table(epoch uint64, addrs ...string) Table {
	t := Table{Epoch: epoch}
	for i, a := range addrs {
		t.Members = append(t.Members, Member{Addr: a, UID: int64(i + 1), Weight: DefaultWeight})
	}
	return t
}

func TestAdvanceIsMonotonic(t *testing.T) {
	s := NewState(Seed([]string{"a:1", "b:2"}))
	if s.Epoch() != 0 {
		t.Fatalf("seed epoch = %d", s.Epoch())
	}
	if !s.Advance(table(3, "a:1", "b:2", "c:3")) {
		t.Fatal("newer table rejected")
	}
	if s.Advance(table(3, "x:9")) || s.Advance(table(2, "x:9")) {
		t.Fatal("stale table installed")
	}
	if s.Epoch() != 3 || len(s.Table().Members) != 3 {
		t.Fatalf("epoch=%d members=%d", s.Epoch(), len(s.Table().Members))
	}
	if s.Advances() != 1 {
		t.Fatalf("advances = %d", s.Advances())
	}
}

func TestExclusionsClearOnAdvance(t *testing.T) {
	s := NewState(table(1, "a:1", "b:2"))
	s.Exclude("a:1")
	if got := s.Addrs(); len(got) != 1 || got[0] != "b:2" {
		t.Fatalf("addrs after exclude = %v", got)
	}
	s.Exclude("b:2")
	if _, ok := s.Pick(RoundRobin); ok {
		t.Fatal("picked from fully excluded table")
	}
	if !s.Advance(table(2, "a:1", "b:2")) {
		t.Fatal("advance rejected")
	}
	if got := s.Addrs(); len(got) != 2 {
		t.Fatalf("exclusions survived epoch advance: %v", got)
	}
}

func TestRoundRobinCyclesAndSkipsDraining(t *testing.T) {
	tab := table(1, "a:1", "b:2", "c:3")
	tab.Members[1].Draining = true
	s := NewState(tab)
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		addr, ok := s.Pick(RoundRobin)
		if !ok {
			t.Fatal("pick failed")
		}
		counts[addr]++
	}
	if counts["b:2"] != 0 {
		t.Fatalf("draining member picked %d times", counts["b:2"])
	}
	if counts["a:1"] != 15 || counts["c:3"] != 15 {
		t.Fatalf("uneven round-robin: %v", counts)
	}
}

func TestWeightedRoundRobinShare(t *testing.T) {
	tab := table(1, "a:1", "b:2")
	tab.Members[0].Weight = 75
	tab.Members[1].Weight = 25
	s := NewState(tab)
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		addr, _ := s.Pick(RoundRobin)
		counts[addr]++
	}
	if counts["a:1"] != 75 || counts["b:2"] != 25 {
		t.Fatalf("weighted share = %v, want 75/25", counts)
	}
}

func TestZeroWeightFallback(t *testing.T) {
	tab := table(1, "a:1", "b:2")
	tab.Members[0].Weight = 0
	tab.Members[1].Weight = 0
	s := NewState(tab)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		addr, ok := s.Pick(RoundRobin)
		if !ok {
			t.Fatal("all-zero weights must fall back, not fail")
		}
		counts[addr]++
	}
	// The fallback treats the members as equally weighted: it must still
	// rotate, not pin all traffic to one member.
	if counts["a:1"] != 5 || counts["b:2"] != 5 {
		t.Fatalf("all-zero-weight fallback did not rotate: %v", counts)
	}
}

func TestPickAnyIgnoresExclusions(t *testing.T) {
	tab := table(1, "a:1", "b:2", "c:3")
	tab.Members[2].Draining = true
	s := NewState(tab)
	s.Exclude("a:1")
	s.Exclude("b:2")
	if _, ok := s.Pick(RoundRobin); ok {
		t.Fatal("Pick must fail with every member excluded")
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		addr, ok := s.PickAny()
		if !ok {
			t.Fatal("PickAny must ignore exclusions")
		}
		if addr == "c:3" {
			t.Fatal("PickAny returned a draining member")
		}
		seen[addr] = true
	}
	if !seen["a:1"] || !seen["b:2"] {
		t.Fatalf("PickAny did not rotate over excluded members: %v", seen)
	}
}

func TestPowerOfTwoAvoidsLoadedMember(t *testing.T) {
	tab := table(1, "a:1", "b:2", "c:3")
	tab.Members[0].Load = 1000 // hot member per piggybacked report
	s := NewSeededState(tab, 7)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		addr, ok := s.Pick(PowerOfTwo)
		if !ok {
			t.Fatal("pick failed")
		}
		counts[addr]++
	}
	// a:1 is only picked when both probes land on it — at most ~1/3 of the
	// time in expectation is already generous; with 3 members and distinct
	// probes it should never win a comparison.
	if counts["a:1"] != 0 {
		t.Fatalf("p2c picked the hot member %d times: %v", counts["a:1"], counts)
	}
}

func TestPowerOfTwoSeesLocalInflight(t *testing.T) {
	s := NewSeededState(table(1, "a:1", "b:2"), 3)
	release := make([]func(), 0, 8)
	for i := 0; i < 8; i++ {
		release = append(release, s.Acquire("a:1"))
	}
	for i := 0; i < 50; i++ {
		if addr, _ := s.Pick(PowerOfTwo); addr != "b:2" {
			t.Fatalf("pick %d chose %s despite 8 local in-flight on a:1", i, addr)
		}
	}
	for _, r := range release {
		r()
	}
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		addr, _ := s.Pick(PowerOfTwo)
		seen[addr] = true
	}
	if !seen["a:1"] {
		t.Fatal("a:1 never picked after releases")
	}
}

func TestAffinityIsStableAndConsistent(t *testing.T) {
	tab := table(1, "a:1", "b:2", "c:3", "d:4")
	s1 := NewState(tab)
	s2 := NewState(tab.Clone())
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		o1, ok1 := s1.PickKeyed(key)
		o2, ok2 := s2.PickKeyed(key)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %s: owners differ (%s vs %s)", key, o1, o2)
		}
		if again, _ := s1.PickKeyed(key); again != o1 {
			t.Fatalf("key %s: owner not stable", key)
		}
	}
}

func TestAffinityMinimalReshuffleOnGrowth(t *testing.T) {
	old := NewState(table(1, "a:1", "b:2", "c:3"))
	grown := NewState(table(2, "a:1", "b:2", "c:3", "d:4"))
	moved := 0
	const keys = 500
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%04d", i)
		before, _ := old.PickKeyed(key)
		after, _ := grown.PickKeyed(key)
		if before != after {
			if after != "d:4" {
				t.Fatalf("key %s moved %s -> %s, not to the new member", key, before, after)
			}
			moved++
		}
	}
	// Consistent hashing moves only ~1/n of the keyspace to the new node.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d/%d keys moved on growth, want roughly %d", moved, keys, keys/4)
	}
}

func TestAffinityFailsOverClockwise(t *testing.T) {
	s := NewState(table(1, "a:1", "b:2", "c:3"))
	key := "pinned"
	owner, _ := s.PickKeyed(key)
	s.Exclude(owner)
	fallback, ok := s.PickKeyed(key)
	if !ok || fallback == owner {
		t.Fatalf("fallback = %q ok=%v", fallback, ok)
	}
	// The fallback is deterministic while the exclusion lasts.
	for i := 0; i < 10; i++ {
		if again, _ := s.PickKeyed(key); again != fallback {
			t.Fatal("fallback owner not stable")
		}
	}
}

func TestRingOwnerDeterminism(t *testing.T) {
	tab := table(1, "n1:1", "n2:1", "n3:1")
	r1, r2 := BuildRing(tab), BuildRing(tab.Clone())
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("ring owner differs for %s", key)
		}
	}
	if BuildRing(Table{}).Owner("x") != -1 {
		t.Fatal("empty ring must return -1")
	}
}

func TestRingOwnersReplicaSet(t *testing.T) {
	tab := table(1, "n1:1", "n2:1", "n3:1", "n4:1")
	r := BuildRing(tab)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want 3 distinct members", key, owners)
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if o < 0 || o >= len(tab.Members) || seen[o] {
				t.Fatalf("Owners(%s, 3) = %v: out of range or duplicate", key, owners)
			}
			seen[o] = true
		}
		// The primary is Owner, and shorter replica sets are prefixes of
		// longer ones (a store can widen R without remapping primaries).
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%s)[0] = %d, Owner = %d", key, owners[0], r.Owner(key))
		}
		if two := r.Owners(key, 2); two[0] != owners[0] || two[1] != owners[1] {
			t.Fatalf("Owners(%s, 2) = %v not a prefix of %v", key, two, owners)
		}
	}
	// Asking for more replicas than members returns every member once.
	if got := r.Owners("k", 10); len(got) != 4 {
		t.Fatalf("Owners(k, 10) = %v, want all 4 members", got)
	}
	if BuildRing(Table{}).Owners("x", 2) != nil {
		t.Fatal("empty ring must return nil")
	}
}
