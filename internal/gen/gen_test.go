package gen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const sample = `package demo

type Args struct{ N int }
type Reply struct{ M int }

//ermi:elastic
type Calc interface {
	Double(arg Args) (Reply, error)
	Tag(arg string) (map[string][]byte, error)
}

// Plain is not marked and must be ignored.
type Plain interface {
	Foo(arg Args) (Reply, error)
}
`

func TestParseExtractsMarkedInterfaces(t *testing.T) {
	f, err := Parse("sample.go", []byte(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Package != "demo" {
		t.Fatalf("package = %q", f.Package)
	}
	if len(f.Services) != 1 {
		t.Fatalf("services = %d, want 1 (unmarked ignored)", len(f.Services))
	}
	svc := f.Services[0]
	if svc.Name != "Calc" || len(svc.Methods) != 2 {
		t.Fatalf("service = %+v", svc)
	}
	if svc.Methods[0].ArgType != "Args" || svc.Methods[0].ReplyType != "Reply" {
		t.Fatalf("method 0 = %+v", svc.Methods[0])
	}
	if svc.Methods[1].ArgType != "string" || svc.Methods[1].ReplyType != "map[string][]byte" {
		t.Fatalf("method 1 = %+v", svc.Methods[1])
	}
}

func TestParseRejectsBadSignatures(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no arg", `package p
//ermi:elastic
type I interface{ M() (int, error) }`},
		{"two args", `package p
//ermi:elastic
type I interface{ M(a, b int) (int, error) }`},
		{"no error", `package p
//ermi:elastic
type I interface{ M(a int) int }`},
		{"second result not error", `package p
//ermi:elastic
type I interface{ M(a int) (int, string) }`},
		{"embedded interface", `package p
type J interface{ M(a int) (int, error) }
//ermi:elastic
type I interface{ J }`},
		{"no marked interface", `package p
type I interface{ M(a int) (int, error) }`},
		{"empty interface", `package p
//ermi:elastic
type I interface{}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse("x.go", []byte(tc.src)); err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			}
		})
	}
}

func TestGenerateCompilesAndContainsAPI(t *testing.T) {
	f, err := Parse("sample.go", []byte(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, err := Generate(f, "sample.go")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	src := string(out)
	for _, want := range []string{
		"type CalcStub struct",
		"func NewCalcStub(stub *core.Stub) *CalcStub",
		"func LookupCalc(name string, reg *core.RegistryClient",
		"func (s *CalcStub) Double(arg Args) (Reply, error)",
		"core.Call[Args, Reply](s.stub, \"Double\", arg)",
		"func (s *CalcStub) DoubleAsync(arg Args) *core.Future[Reply]",
		"core.GoCall[Args, Reply](s.stub, \"Double\", arg)",
		"func (s *CalcStub) DoubleOneWay(arg Args) error",
		"core.OneWayCall[Args](s.stub, \"Double\", arg)",
		"func RegisterCalc(mux *core.Mux, impl Calc)",
		"func NewCalcFactory(",
		"var _ Calc = (*CalcStub)(nil)",
		"ChangePoolSize() int",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// The output must itself parse as valid Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", out, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
}

func TestTypeStringVariants(t *testing.T) {
	src := `package p
//ermi:elastic
type I interface {
	A(arg *Args) ([]Reply, error)
	B(arg []byte) (map[string]int, error)
	C(arg struct{}) (pkg.Qualified, error)
}
type Args struct{}
type Reply struct{}
`
	f, err := Parse("x.go", []byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := f.Services[0].Methods
	wants := []Method{
		{Name: "A", ArgType: "*Args", ReplyType: "[]Reply"},
		{Name: "B", ArgType: "[]byte", ReplyType: "map[string]int"},
		{Name: "C", ArgType: "struct{}", ReplyType: "pkg.Qualified"},
	}
	for i, want := range wants {
		if m[i] != want {
			t.Errorf("method %d = %+v, want %+v", i, m[i], want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f, _ := Parse("sample.go", []byte(sample))
	a, err := Generate(f, "sample.go")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(f, "sample.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("generation is not deterministic")
	}
}

// TestAffinityAnnotation: //ermi:affinity on a method yields KeyField and a
// WithAffinity stub variant; unannotated methods get none; a bare marker is
// rejected.
func TestAffinityAnnotation(t *testing.T) {
	src := `package p
type Args struct{ Key, Val string }
type Reply struct{ OK bool }
//ermi:elastic
type KV interface {
	//ermi:affinity Key
	Put(arg Args) (Reply, error)
	Flush(arg Args) (Reply, error)
}`
	f, err := Parse("kv.go", []byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ms := f.Services[0].Methods
	if ms[0].KeyField != "Key" || ms[1].KeyField != "" {
		t.Fatalf("key fields = %q, %q", ms[0].KeyField, ms[1].KeyField)
	}
	out, err := Generate(f, "kv.go")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	code := string(out)
	if !strings.Contains(code, "func (s *KVStub) PutWithAffinity(arg Args) (Reply, error)") {
		t.Fatalf("generated code lacks PutWithAffinity:\n%s", code)
	}
	if !strings.Contains(code, `core.CallKeyed[Args, Reply](s.stub, "Put", string(arg.Key), arg)`) {
		t.Fatalf("PutWithAffinity does not route by arg.Key:\n%s", code)
	}
	if strings.Contains(code, "FlushWithAffinity") {
		t.Fatal("unannotated method grew an affinity variant")
	}

	for _, bad := range []string{
		`package p
//ermi:elastic
type I interface {
	//ermi:affinity
	M(a int) (int, error)
}`,
		`package p
//ermi:elastic
type I interface {
	//ermi:affinity two words
	M(a int) (int, error)
}`,
	} {
		if _, err := Parse("bad.go", []byte(bad)); err == nil {
			t.Fatalf("Parse accepted malformed affinity annotation:\n%s", bad)
		}
	}
}
