package gentest

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"elasticrmi/internal/transport"
)

// codecRoundTrip marshals orig through its generated codec, decodes it into a
// fresh value, and requires the result to match both the original and the
// value the gob fallback would have produced — the codec must be a drop-in
// replacement for gob, not a near-miss.
func codecRoundTrip[T any](t *testing.T, orig *T) {
	t.Helper()
	m, ok := any(orig).(transport.Marshaler)
	if !ok {
		t.Fatalf("%T does not implement transport.Marshaler", orig)
	}
	size := m.SizeERMI()
	out := m.MarshalERMI(make([]byte, 0, size))
	if len(out) != size {
		t.Fatalf("%T: SizeERMI = %d but MarshalERMI produced %d bytes", orig, size, len(out))
	}
	var got T
	if err := any(&got).(transport.Unmarshaler).UnmarshalERMI(out); err != nil {
		t.Fatalf("%T: UnmarshalERMI of own encoding: %v", orig, err)
	}
	if !reflect.DeepEqual(got, *orig) {
		t.Fatalf("%T round trip mismatch:\n got %+v\nwant %+v", orig, got, *orig)
	}
	// Gob baseline: the same value pushed through the fallback encoding must
	// decode to the same result (gob cannot encode field-less structs; that
	// is exactly the case the codec handles trivially, so skip it there).
	buf := new(bytes.Buffer)
	if err := gob.NewEncoder(buf).Encode(orig); err != nil {
		return
	}
	var viaGob T
	if err := gob.NewDecoder(buf).Decode(&viaGob); err != nil {
		t.Fatalf("%T: gob baseline decode: %v", orig, err)
	}
	if !reflect.DeepEqual(got, viaGob) {
		t.Fatalf("%T diverges from gob baseline:\ncodec %+v\n  gob %+v", orig, got, viaGob)
	}
}

// FuzzCodecRoundTrip drives every generated gentest codec with fuzzed field
// values (marshal → unmarshal must be the identity and agree with the gob
// baseline) and with hostile raw bytes (UnmarshalERMI must be total: error
// or success, never a panic, and never accept trailing garbage).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(5), "key", "value", []byte("payload"), []byte{0x01})
	f.Add(int64(-1), "", "", []byte{}, []byte{})
	f.Add(int64(1<<62), "k\x00n", "väl", []byte{0xff, 0xfe}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, n int64, key, val string, blob, hostile []byte) {
		codecRoundTrip(t, &BumpArgs{N: n})
		codecRoundTrip(t, &BumpReply{Total: ^n})
		codecRoundTrip(t, &PeekArgs{})
		codecRoundTrip(t, &TagArgs{Key: key, Value: val})
		codecRoundTrip(t, &TagReply{MemberUID: n})
		var first byte
		if len(blob) > 0 {
			first = blob[0]
		}
		codecRoundTrip(t, &BlobReply{Len: int64(len(blob)), First: first})

		// BlobArgs decodes Data as a zero-copy view, so nil/empty identity is
		// not preserved — compare contents and assert the view really does
		// alias the encoded buffer rather than copying it.
		ba := &BlobArgs{Data: blob}
		enc := ba.MarshalERMI(make([]byte, 0, ba.SizeERMI()))
		var got BlobArgs
		if err := got.UnmarshalERMI(enc); err != nil {
			t.Fatalf("BlobArgs: UnmarshalERMI of own encoding: %v", err)
		}
		if !bytes.Equal(got.Data, blob) {
			t.Fatalf("BlobArgs round trip mismatch: got %x want %x", got.Data, blob)
		}
		if len(blob) > 0 && &got.Data[0] != &enc[len(enc)-len(blob)] {
			t.Fatal("BlobArgs.Data was copied; expected a zero-copy view into the encoding")
		}

		// Trailing garbage after a valid encoding must be rejected — a codec
		// that silently ignores leftover bytes would mask framing bugs.
		withTrailer := append(append([]byte(nil), enc...), 0x00)
		if err := new(BlobArgs).UnmarshalERMI(withTrailer); err == nil {
			t.Fatal("BlobArgs accepted an encoding with a trailing byte")
		}

		// Hostile input: arbitrary bytes must decode or error, never panic.
		for _, u := range []transport.Unmarshaler{
			&BumpArgs{}, &BumpReply{}, &PeekArgs{}, &TagArgs{},
			&TagReply{}, &BlobArgs{}, &BlobReply{},
		} {
			_ = u.UnmarshalERMI(hostile)
		}
	})
}
