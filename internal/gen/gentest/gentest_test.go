package gentest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"elasticrmi/internal/core"
	"elasticrmi/internal/ermitest"
)

// TestGeneratedStubAndSkeleton runs the checked-in generator output against
// a live pool: the typed stub invokes through the generated skeleton table
// and shared state behaves as one object.
func TestGeneratedStubAndSkeleton(t *testing.T) {
	env := ermitest.New(t, 8)
	env.StartPool(t, core.Config{
		Name: "gen-counter", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, NewCounterFactory(NewImpl))

	svc, err := LookupCounter("gen-counter", env.RegCli)
	if err != nil {
		t.Fatalf("LookupCounter: %v", err)
	}
	defer svc.Close()

	for i := int64(1); i <= 5; i++ {
		rep, err := svc.Bump(BumpArgs{N: 1})
		if err != nil {
			t.Fatalf("Bump: %v", err)
		}
		if rep.Total != i {
			t.Fatalf("total = %d, want %d", rep.Total, i)
		}
	}
	rep, err := svc.Peek(PeekArgs{})
	if err != nil || rep.Total != 5 {
		t.Fatalf("Peek = %d, %v", rep.Total, err)
	}
}

// TestGeneratedFactoryForwardsPoolSizer: the implementation implements
// core.PoolSizer, so the generated factory must produce objects the runtime
// recognizes as fine-grained — and the pool must follow their deltas.
func TestGeneratedFactoryForwardsPoolSizer(t *testing.T) {
	env := ermitest.New(t, 8)
	var mu sync.Mutex
	var impls []*Impl
	factory := NewCounterFactory(func(ctx *core.MemberContext) (Counter, error) {
		impl := &Impl{ctx: ctx}
		mu.Lock()
		impls = append(impls, impl)
		mu.Unlock()
		return impl, nil
	})
	pool := env.StartPool(t, core.Config{
		Name: "gen-sized", MinPoolSize: 2, MaxPoolSize: 6,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, factory)
	if pool.Policy() != "fine" {
		t.Fatalf("policy = %s, want fine (PoolSizer forwarded through generated factory)", pool.Policy())
	}
	mu.Lock()
	for _, impl := range impls {
		impl.Delta.Store(1)
	}
	mu.Unlock()
	pool.Step()
	if got := pool.Size(); got != 3 {
		t.Fatalf("size = %d, want 3 (generated object forwarded ChangePoolSize)", got)
	}
}

// TestGeneratedAsyncVariants drives the generated async and one-way stub
// methods against a live pool: pipelined futures resolve to typed replies,
// and one-way bumps land in shared state without a response.
func TestGeneratedAsyncVariants(t *testing.T) {
	env := ermitest.New(t, 8)
	env.StartPool(t, core.Config{
		Name: "gen-async", MinPoolSize: 2, MaxPoolSize: 4,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, NewCounterFactory(NewImpl))

	svc, err := LookupCounter("gen-async", env.RegCli, core.WithBatching(300*time.Microsecond))
	if err != nil {
		t.Fatalf("LookupCounter: %v", err)
	}
	defer svc.Close()

	const n = 32
	futures := make([]*core.Future[BumpReply], n)
	for i := range futures {
		futures[i] = svc.BumpAsync(BumpArgs{N: 1})
	}
	for i, f := range futures {
		if _, err := f.Get(); err != nil {
			t.Fatalf("BumpAsync %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if err := svc.BumpOneWay(BumpArgs{N: 1}); err != nil {
			t.Fatalf("BumpOneWay %d: %v", i, err)
		}
	}
	// One-way bumps carry no response; poll the shared counter for their
	// arrival instead of sleeping.
	ermitest.WaitUntil(t, "one-way bumps to land in shared state", 10*time.Second, func() bool {
		rep, err := svc.Peek(PeekArgs{})
		if err != nil {
			t.Fatalf("Peek: %v", err)
		}
		return rep.Total == 2*n
	})
}

// TestGeneratedAffinityVariant drives the //ermi:affinity output against a
// live pool: same-key invocations through TagWithAffinity must land on the
// same member, and the keyspace must spread across more than one member.
func TestGeneratedAffinityVariant(t *testing.T) {
	env := ermitest.New(t, 8)
	env.StartPool(t, core.Config{
		Name: "gen-affinity", MinPoolSize: 3, MaxPoolSize: 3,
		BurstInterval: time.Hour, DisableBroadcast: true,
	}, NewCounterFactory(NewImpl))

	svc, err := LookupCounter("gen-affinity", env.RegCli)
	if err != nil {
		t.Fatalf("LookupCounter: %v", err)
	}
	defer svc.Close()
	// One plain call lands the piggybacked routing table (the seed table
	// carries no UIDs to hash); affinity placement is stable from then on.
	if _, err := svc.Tag(TagArgs{Key: "warmup", Value: "x"}); err != nil {
		t.Fatalf("warmup Tag: %v", err)
	}

	owners := make(map[string]int64)
	for round := 0; round < 3; round++ {
		for k := 0; k < 16; k++ {
			key := fmt.Sprintf("key-%02d", k)
			rep, err := svc.TagWithAffinity(TagArgs{Key: key, Value: "v"})
			if err != nil {
				t.Fatalf("TagWithAffinity(%s): %v", key, err)
			}
			if uid, seen := owners[key]; seen && uid != rep.MemberUID {
				t.Fatalf("key %s moved from member %d to %d with no view change", key, uid, rep.MemberUID)
			}
			owners[key] = rep.MemberUID
		}
	}
	distinct := make(map[int64]bool)
	for _, uid := range owners {
		distinct[uid] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d keys owned by one member; affinity is not spreading", len(owners))
	}
}
