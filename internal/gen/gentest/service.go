// Package gentest is the compiled integration fixture for the ElasticRMI
// preprocessor: service_ermi.go is generated from this file by
//
//	go run ./cmd/ermi-gen -in internal/gen/gentest/service.go
//
// and checked in, so the generator's output is built and exercised against
// a live pool by the package tests.
package gentest

import (
	"sync/atomic"

	"elasticrmi/internal/core"
)

//go:generate go run elasticrmi/cmd/ermi-gen -in service.go

// Argument/reply types of the fixture service. The group is marked
// //ermi:codec, so the generator emits binary payload codecs alongside the
// stubs: these types travel on the wire without gob.
//
//ermi:codec
type (
	// BumpArgs increments the shared counter by N.
	BumpArgs struct{ N int64 }
	// BumpReply returns the new total.
	BumpReply struct{ Total int64 }
	// PeekArgs is the empty argument of Peek.
	PeekArgs struct{}
	// TagArgs stores Value under Key (the affinity key).
	TagArgs struct{ Key, Value string }
	// TagReply names the member that served the store.
	TagReply struct{ MemberUID int64 }
	// BlobArgs carries an opaque payload; Data decodes as a zero-copy view
	// into the transport frame.
	BlobArgs struct{ Data []byte }
	// BlobReply returns the payload's length and leading byte.
	BlobReply struct {
		Len   int64
		First byte
	}
)

// Counter is the elastic interface under test.
//
//ermi:elastic
type Counter interface {
	Bump(arg BumpArgs) (BumpReply, error)
	Peek(arg PeekArgs) (BumpReply, error)
	// Tag is annotated with a key extractor, so the generated stub grows a
	// TagWithAffinity variant routing by arg.Key.
	//
	//ermi:affinity Key
	Tag(arg TagArgs) (TagReply, error)
	// Sink measures the zero-alloc payload path: its argument carries a
	// []byte view and its reply is fixed-size.
	Sink(arg BlobArgs) (BlobReply, error)
}

// Impl implements Counter with shared state; it also implements
// core.PoolSizer so the generated factory's fine-grained forwarding path is
// exercised.
type Impl struct {
	ctx   *core.MemberContext
	Delta atomic.Int64 // what ChangePoolSize returns
}

var _ Counter = (*Impl)(nil)

// NewImpl is the application constructor handed to the generated factory.
func NewImpl(ctx *core.MemberContext) (Counter, error) {
	return &Impl{ctx: ctx}, nil
}

// Bump implements Counter.
func (i *Impl) Bump(arg BumpArgs) (BumpReply, error) {
	total, err := i.ctx.State.AddInt("total", arg.N)
	return BumpReply{Total: total}, err
}

// Peek implements Counter.
func (i *Impl) Peek(PeekArgs) (BumpReply, error) {
	total, err := i.ctx.State.GetInt("total")
	return BumpReply{Total: total}, err
}

// Tag implements Counter: it records the key in shared state and reports
// which member executed, so tests can assert affinity placement.
func (i *Impl) Tag(arg TagArgs) (TagReply, error) {
	if err := i.ctx.State.PutString("tag/"+arg.Key, arg.Value); err != nil {
		return TagReply{}, err
	}
	return TagReply{MemberUID: i.ctx.UID}, nil
}

// Sink implements Counter without letting the payload view escape.
func (i *Impl) Sink(arg BlobArgs) (BlobReply, error) {
	rep := BlobReply{Len: int64(len(arg.Data))}
	if len(arg.Data) > 0 {
		rep.First = arg.Data[0]
	}
	return rep, nil
}

// ChangePoolSize implements core.PoolSizer.
func (i *Impl) ChangePoolSize() int { return int(i.Delta.Load()) }
