package gentest

import (
	"testing"

	"elasticrmi/internal/transport"
)

// gobBlob mirrors BlobArgs but carries no generated codec, so
// transport.Encode/Decode take the gob fallback path for it. The pair
// measures exactly what the `//ermi:codec` annotation buys at each payload
// size: same struct shape, same transport entry points, different encoding.
type gobBlob struct{ Data []byte }

// benchmarkCodecRoundTrip measures one Encode+Decode cycle of a
// codec-annotated payload through the transport's arena pipeline.
func benchmarkCodecRoundTrip(b *testing.B, n int) {
	arg := BlobArgs{Data: make([]byte, n)}
	for i := range arg.Data {
		arg.Data[i] = byte(i)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := transport.Encode(&arg)
		if err != nil {
			b.Fatal(err)
		}
		var out BlobArgs
		if err := transport.Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
		// BlobArgs decodes as a zero-copy view into buf; this loop's use of
		// the view ends here, so the slab can go back to the arena.
		transport.ReleasePayload(buf)
	}
}

// benchmarkGobRoundTrip is the same cycle through the gob fallback.
func benchmarkGobRoundTrip(b *testing.B, n int) {
	arg := gobBlob{Data: make([]byte, n)}
	for i := range arg.Data {
		arg.Data[i] = byte(i)
	}
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := transport.Encode(&arg)
		if err != nil {
			b.Fatal(err)
		}
		var out gobBlob
		if err := transport.Decode(buf, &out); err != nil {
			b.Fatal(err)
		}
		transport.ReleasePayload(buf)
	}
}

func BenchmarkCodec64B(b *testing.B)   { benchmarkCodecRoundTrip(b, 64) }
func BenchmarkCodec4KB(b *testing.B)   { benchmarkCodecRoundTrip(b, 4<<10) }
func BenchmarkCodec256KB(b *testing.B) { benchmarkCodecRoundTrip(b, 256<<10) }

func BenchmarkGob64B(b *testing.B)   { benchmarkGobRoundTrip(b, 64) }
func BenchmarkGob4KB(b *testing.B)   { benchmarkGobRoundTrip(b, 4<<10) }
func BenchmarkGob256KB(b *testing.B) { benchmarkGobRoundTrip(b, 256<<10) }
