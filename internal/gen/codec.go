package gen

// Codec generation: the `//ermi:codec` annotation selects struct types for
// which the preprocessor emits a binary payload codec — the transport.Marshaler
// and transport.Unmarshaler methods (SizeERMI / MarshalERMI / UnmarshalERMI)
// plus the ERMIViews marker for types whose decoded form aliases the payload
// buffer. Annotated argument/reply structs then skip gob entirely: the
// transport marshals them into exactly-sized arena slabs and decodes them
// with zero copies for []byte fields.
//
// The supported field shapes are the ones remote payloads actually use:
// fixed-width integers (zigzag varints on the wire), floats, bools, strings
// (copied on decode — they outlive the frame), []byte (zero-copy views),
// time.Duration, locally-declared named scalar types, nested annotated
// structs, and slices/maps of any of those. Pointers, interfaces, channels,
// fixed arrays and foreign struct types (time.Time included) are rejected:
// such types keep the gob fallback.

import (
	"fmt"
	"go/ast"
	"strings"
)

// CodecMarker is the comment that selects struct types for codec generation.
const CodecMarker = "//ermi:codec"

// wireKind classifies how one field shape travels on the wire.
type wireKind int

const (
	wireBool    wireKind = iota
	wireUint             // uvarint
	wireInt              // zigzag varint
	wireFloat32          // fixed 4 bytes
	wireFloat64          // fixed 8 bytes
	wireString           // length prefix + bytes, copied on decode
	wireBytes            // length prefix + bytes, zero-copy view on decode
	wireStruct           // nested annotated struct
	wireSlice            // count + elements
	wireMap              // count + key/value pairs
)

// wireType is the resolved wire shape of one field (recursively, for slices
// and maps).
type wireType struct {
	kind wireKind
	// goType is the field's Go source type ("int32", "Side",
	// "time.Duration", "[]string", ...), used for casts and make().
	goType string
	elem   *wireType // wireSlice element
	key    *wireType // wireMap key
	val    *wireType // wireMap value
	viewy  bool      // decoded form may alias the input buffer
}

// codecField is one struct field of a codec type.
type codecField struct {
	name string
	typ  *wireType
}

// Codec is one annotated struct type with its resolved fields.
type Codec struct {
	Name   string
	Viewy  bool
	fields []codecField
}

// typeDecls indexes every named type declared in the parsed files, so field
// resolution can chase locally-declared named types (annotated structs and
// named scalars like `type Side int`).
type typeDecls map[string]*ast.TypeSpec

// collectCodecs walks the declarations of one parsed file, recording every
// named type and the names marked //ermi:codec.
func collectCodecs(f *ast.File, decls typeDecls, marked map[string]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			decls[ts.Name.Name] = ts
			if hasMarker(CodecMarker, gd.Doc) || hasMarker(CodecMarker, ts.Doc) || hasMarker(CodecMarker, ts.Comment) {
				marked[ts.Name.Name] = true
			}
		}
	}
}

func hasMarker(marker string, cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// resolveCodecs turns the marked names into fully-resolved Codec values, in
// the order the names were declared (declOrder).
func resolveCodecs(decls typeDecls, marked map[string]bool, declOrder []string) ([]Codec, error) {
	r := &codecResolver{decls: decls, marked: marked, resolving: map[string]bool{}}
	var out []Codec
	for _, name := range declOrder {
		if !marked[name] {
			continue
		}
		c, err := r.codec(name)
		if err != nil {
			return nil, err
		}
		out = append(out, *c)
	}
	return out, nil
}

type codecResolver struct {
	decls     typeDecls
	marked    map[string]bool
	resolving map[string]bool // cycle guard
	done      map[string]*Codec
}

func (r *codecResolver) codec(name string) (*Codec, error) {
	if r.done == nil {
		r.done = map[string]*Codec{}
	}
	if c, ok := r.done[name]; ok {
		return c, nil
	}
	if r.resolving[name] {
		return nil, fmt.Errorf("gen: codec type %s is recursive; recursive types are not supported", name)
	}
	ts, ok := r.decls[name]
	if !ok {
		return nil, fmt.Errorf("gen: codec type %s is not declared in the parsed files", name)
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return nil, fmt.Errorf("gen: %s type %s must be a struct", CodecMarker, name)
	}
	r.resolving[name] = true
	defer delete(r.resolving, name)
	c := &Codec{Name: name}
	if st.Fields != nil {
		for _, field := range st.Fields.List {
			if len(field.Names) == 0 {
				return nil, fmt.Errorf("gen: codec type %s: embedded fields are not supported", name)
			}
			wt, err := r.resolve(field.Type)
			if err != nil {
				return nil, fmt.Errorf("gen: codec type %s: field %s: %w", name, field.Names[0].Name, err)
			}
			for _, fn := range field.Names {
				c.fields = append(c.fields, codecField{name: fn.Name, typ: wt})
			}
			c.Viewy = c.Viewy || wt.viewy
		}
	}
	r.done[name] = c
	return c, nil
}

// scalarKinds maps the built-in scalar identifiers to wire kinds.
var scalarKinds = map[string]wireKind{
	"bool": wireBool,
	"uint": wireUint, "uint8": wireUint, "uint16": wireUint,
	"uint32": wireUint, "uint64": wireUint, "byte": wireUint, "uintptr": wireUint,
	"int": wireInt, "int8": wireInt, "int16": wireInt,
	"int32": wireInt, "int64": wireInt, "rune": wireInt,
	"float32": wireFloat32, "float64": wireFloat64,
	"string": wireString,
}

func (r *codecResolver) resolve(e ast.Expr) (*wireType, error) {
	switch t := e.(type) {
	case *ast.Ident:
		if k, ok := scalarKinds[t.Name]; ok {
			return &wireType{kind: k, goType: t.Name}, nil
		}
		// A locally-declared named type: either another annotated struct
		// (nested codec) or a named scalar (`type Side int`).
		ts, ok := r.decls[t.Name]
		if !ok {
			return nil, fmt.Errorf("type %s is not declared in the parsed files (external types keep the gob fallback)", t.Name)
		}
		if _, isStruct := ts.Type.(*ast.StructType); isStruct {
			if !r.marked[t.Name] {
				return nil, fmt.Errorf("nested struct %s is not marked %s", t.Name, CodecMarker)
			}
			nested, err := r.codec(t.Name)
			if err != nil {
				return nil, err
			}
			return &wireType{kind: wireStruct, goType: t.Name, viewy: nested.Viewy}, nil
		}
		under, ok := ts.Type.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("named type %s has unsupported underlying type", t.Name)
		}
		k, ok := scalarKinds[under.Name]
		if !ok {
			return nil, fmt.Errorf("named type %s has non-scalar underlying type %s", t.Name, under.Name)
		}
		return &wireType{kind: k, goType: t.Name}, nil
	case *ast.SelectorExpr:
		if base, ok := t.X.(*ast.Ident); ok && base.Name == "time" && t.Sel.Name == "Duration" {
			return &wireType{kind: wireInt, goType: "time.Duration"}, nil
		}
		return nil, fmt.Errorf("foreign type %s is not supported (gob fallback applies)", exprString(t))
	case *ast.ArrayType:
		if t.Len != nil {
			return nil, fmt.Errorf("fixed-size arrays are not supported")
		}
		if id, ok := t.Elt.(*ast.Ident); ok && (id.Name == "byte" || id.Name == "uint8") {
			return &wireType{kind: wireBytes, goType: "[]" + id.Name, viewy: true}, nil
		}
		elem, err := r.resolve(t.Elt)
		if err != nil {
			return nil, err
		}
		return &wireType{kind: wireSlice, goType: "[]" + elem.goType, elem: elem, viewy: elem.viewy}, nil
	case *ast.MapType:
		key, err := r.resolve(t.Key)
		if err != nil {
			return nil, err
		}
		switch key.kind {
		case wireSlice, wireMap, wireBytes, wireStruct:
			return nil, fmt.Errorf("map key type %s is not comparable-scalar", key.goType)
		}
		val, err := r.resolve(t.Value)
		if err != nil {
			return nil, err
		}
		return &wireType{
			kind: wireMap, goType: "map[" + key.goType + "]" + val.goType,
			key: key, val: val, viewy: key.viewy || val.viewy,
		}, nil
	default:
		return nil, fmt.Errorf("unsupported type expression %T", e)
	}
}

func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}

// usesDuration reports whether any codec field (recursively) names
// time.Duration, so the generated file imports "time" only when needed.
func usesDuration(codecs []Codec) bool {
	var walk func(*wireType) bool
	walk = func(wt *wireType) bool {
		if wt == nil {
			return false
		}
		return wt.goType == "time.Duration" || strings.Contains(wt.goType, "time.Duration") ||
			walk(wt.elem) || walk(wt.key) || walk(wt.val)
	}
	for _, c := range codecs {
		for _, f := range c.fields {
			if walk(f.typ) {
				return true
			}
		}
	}
	return false
}

// emitCodecs renders the codec methods for every annotated type as Go source
// (unformatted; Generate runs the result through format.Source).
func emitCodecs(codecs []Codec) string {
	var b strings.Builder
	for i := range codecs {
		emitCodec(&b, &codecs[i])
	}
	return b.String()
}

func emitCodec(b *strings.Builder, c *Codec) {
	e := &codecEmitter{b: b}
	fmt.Fprintf(b, "\n// SizeERMI returns the exact encoded size of v (transport.Marshaler).\n")
	fmt.Fprintf(b, "func (v *%s) SizeERMI() int {\n\tn := 0\n", c.Name)
	for _, f := range c.fields {
		e.size("v."+f.name, f.typ, 1)
	}
	fmt.Fprintf(b, "\treturn n\n}\n")

	fmt.Fprintf(b, "\n// MarshalERMI appends v's encoding to b (transport.Marshaler).\n")
	fmt.Fprintf(b, "func (v *%s) MarshalERMI(b []byte) []byte {\n", c.Name)
	for _, f := range c.fields {
		e.marshal("v."+f.name, f.typ, 1)
	}
	fmt.Fprintf(b, "\treturn b\n}\n")

	fmt.Fprintf(b, "\n// UnmarshalERMI decodes an encoding produced by MarshalERMI\n")
	fmt.Fprintf(b, "// (transport.Unmarshaler). It is total on arbitrary input.\n")
	fmt.Fprintf(b, "func (v *%s) UnmarshalERMI(b []byte) error {\n", c.Name)
	fmt.Fprintf(b, "\trest, err := v.consumeERMI(b)\n")
	fmt.Fprintf(b, "\tif err != nil {\n\t\treturn err\n\t}\n")
	fmt.Fprintf(b, "\tif len(rest) != 0 {\n\t\treturn ermic.ErrMalformed\n\t}\n")
	fmt.Fprintf(b, "\treturn nil\n}\n")

	fmt.Fprintf(b, "\n// consumeERMI decodes v from the front of b, returning the remainder\n")
	fmt.Fprintf(b, "// (shared by UnmarshalERMI and codecs that nest %s).\n", c.Name)
	fmt.Fprintf(b, "func (v *%s) consumeERMI(b []byte) ([]byte, error) {\n", c.Name)
	for _, f := range c.fields {
		e.consume("v."+f.name, f.typ, 1)
	}
	fmt.Fprintf(b, "\treturn b, nil\n}\n")

	if c.Viewy {
		fmt.Fprintf(b, "\n// ERMIViews marks %s as aliasing its decode buffer: []byte fields\n", c.Name)
		fmt.Fprintf(b, "// are zero-copy views into the payload it was decoded from.\n")
		fmt.Fprintf(b, "func (*%s) ERMIViews() {}\n", c.Name)
	}
}

// codecEmitter writes the per-field statements. depth doubles as both the
// indentation level and the loop-variable suffix, keeping nested loop
// variables distinct.
type codecEmitter struct {
	b *strings.Builder
}

func (e *codecEmitter) pf(depth int, format string, args ...interface{}) {
	e.b.WriteString(strings.Repeat("\t", depth))
	fmt.Fprintf(e.b, format, args...)
	e.b.WriteByte('\n')
}

func (e *codecEmitter) size(expr string, wt *wireType, depth int) {
	switch wt.kind {
	case wireBool:
		e.pf(depth, "n++")
	case wireUint:
		e.pf(depth, "n += ermic.SizeUvarint(uint64(%s))", expr)
	case wireInt:
		e.pf(depth, "n += ermic.SizeVarint(int64(%s))", expr)
	case wireFloat32:
		e.pf(depth, "n += 4")
	case wireFloat64:
		e.pf(depth, "n += 8")
	case wireString, wireBytes:
		e.pf(depth, "n += ermic.SizeBytes(len(%s))", expr)
	case wireStruct:
		e.pf(depth, "n += %s.SizeERMI()", expr)
	case wireSlice:
		i := fmt.Sprintf("i%d", depth)
		e.pf(depth, "n += ermic.SizeUvarint(uint64(len(%s)))", expr)
		if c, ok := constSize(wt.elem); ok {
			e.pf(depth, "n += %d * len(%s)", c, expr)
			return
		}
		e.pf(depth, "for %s := range %s {", i, expr)
		e.size(expr+"["+i+"]", wt.elem, depth+1)
		e.pf(depth, "}")
	case wireMap:
		k := fmt.Sprintf("k%d", depth)
		ev := fmt.Sprintf("e%d", depth)
		e.pf(depth, "n += ermic.SizeUvarint(uint64(len(%s)))", expr)
		kc, kok := constSize(wt.key)
		vc, vok := constSize(wt.val)
		if kok && vok {
			e.pf(depth, "n += %d * len(%s)", kc+vc, expr)
			return
		}
		e.pf(depth, "for %s := range %s {", k, expr)
		if kok {
			e.pf(depth+1, "n += %d", kc)
		} else {
			e.size(k, wt.key, depth+1)
		}
		if vok {
			e.pf(depth+1, "n += %d", vc)
		} else {
			e.pf(depth+1, "%s := %s[%s]", ev, expr, k)
			e.size(ev, wt.val, depth+1)
		}
		e.pf(depth, "}")
	}
}

// constSize returns the fixed encoded size of wt when every value of the
// kind occupies the same number of bytes.
func constSize(wt *wireType) (int, bool) {
	switch wt.kind {
	case wireBool:
		return 1, true
	case wireFloat32:
		return 4, true
	case wireFloat64:
		return 8, true
	}
	return 0, false
}

func (e *codecEmitter) marshal(expr string, wt *wireType, depth int) {
	switch wt.kind {
	case wireBool:
		e.pf(depth, "b = ermic.AppendBool(b, bool(%s))", expr)
	case wireUint:
		e.pf(depth, "b = ermic.AppendUvarint(b, uint64(%s))", expr)
	case wireInt:
		e.pf(depth, "b = ermic.AppendVarint(b, int64(%s))", expr)
	case wireFloat32:
		e.pf(depth, "b = ermic.AppendFloat32(b, float32(%s))", expr)
	case wireFloat64:
		e.pf(depth, "b = ermic.AppendFloat64(b, float64(%s))", expr)
	case wireString:
		e.pf(depth, "b = ermic.AppendString(b, string(%s))", expr)
	case wireBytes:
		e.pf(depth, "b = ermic.AppendBytes(b, %s)", expr)
	case wireStruct:
		e.pf(depth, "b = %s.MarshalERMI(b)", expr)
	case wireSlice:
		i := fmt.Sprintf("i%d", depth)
		e.pf(depth, "b = ermic.AppendUvarint(b, uint64(len(%s)))", expr)
		e.pf(depth, "for %s := range %s {", i, expr)
		e.marshal(expr+"["+i+"]", wt.elem, depth+1)
		e.pf(depth, "}")
	case wireMap:
		k := fmt.Sprintf("k%d", depth)
		ev := fmt.Sprintf("e%d", depth)
		e.pf(depth, "b = ermic.AppendUvarint(b, uint64(len(%s)))", expr)
		e.pf(depth, "for %s := range %s {", k, expr)
		e.pf(depth+1, "%s := %s[%s]", ev, expr, k)
		e.marshal(k, wt.key, depth+1)
		e.marshal(ev, wt.val, depth+1)
		e.pf(depth, "}")
	}
}

// consume emits statements decoding the next wire field of b into expr,
// advancing b. All error paths return (nil, err).
func (e *codecEmitter) consume(expr string, wt *wireType, depth int) {
	// scalar emits the common consume-cast-assign block.
	scalar := func(helper string) {
		e.pf(depth, "{")
		e.pf(depth+1, "x, rest, err := ermic.%s(b)", helper)
		e.pf(depth+1, "if err != nil {")
		e.pf(depth+2, "return nil, err")
		e.pf(depth+1, "}")
		e.pf(depth+1, "%s, b = %s(x), rest", expr, wt.goType)
		e.pf(depth, "}")
	}
	switch wt.kind {
	case wireBool:
		scalar("ConsumeBool")
	case wireUint:
		scalar("ConsumeUvarint")
	case wireInt:
		scalar("ConsumeVarint")
	case wireFloat32:
		scalar("ConsumeFloat32")
	case wireFloat64:
		scalar("ConsumeFloat64")
	case wireString:
		scalar("ConsumeString")
	case wireBytes:
		e.pf(depth, "{")
		e.pf(depth+1, "x, rest, err := ermic.ConsumeBytesView(b)")
		e.pf(depth+1, "if err != nil {")
		e.pf(depth+2, "return nil, err")
		e.pf(depth+1, "}")
		e.pf(depth+1, "%s, b = x, rest", expr)
		e.pf(depth, "}")
	case wireStruct:
		e.pf(depth, "{")
		e.pf(depth+1, "rest, err := %s.consumeERMI(b)", expr)
		e.pf(depth+1, "if err != nil {")
		e.pf(depth+2, "return nil, err")
		e.pf(depth+1, "}")
		e.pf(depth+1, "b = rest")
		e.pf(depth, "}")
	case wireSlice:
		i := fmt.Sprintf("i%d", depth)
		e.pf(depth, "{")
		e.pf(depth+1, "cnt, rest, err := ermic.ConsumeCount(b)")
		e.pf(depth+1, "if err != nil {")
		e.pf(depth+2, "return nil, err")
		e.pf(depth+1, "}")
		e.pf(depth+1, "b = rest")
		e.pf(depth+1, "%s = nil", expr)
		e.pf(depth+1, "if cnt > 0 {")
		e.pf(depth+2, "%s = make(%s, cnt)", expr, wt.goType)
		e.pf(depth+2, "for %s := 0; %s < cnt; %s++ {", i, i, i)
		e.consume(expr+"["+i+"]", wt.elem, depth+3)
		e.pf(depth+2, "}")
		e.pf(depth+1, "}")
		e.pf(depth, "}")
	case wireMap:
		i := fmt.Sprintf("i%d", depth)
		k := fmt.Sprintf("k%d", depth)
		ev := fmt.Sprintf("e%d", depth)
		e.pf(depth, "{")
		e.pf(depth+1, "cnt, rest, err := ermic.ConsumeCount(b)")
		e.pf(depth+1, "if err != nil {")
		e.pf(depth+2, "return nil, err")
		e.pf(depth+1, "}")
		e.pf(depth+1, "b = rest")
		e.pf(depth+1, "%s = nil", expr)
		e.pf(depth+1, "if cnt > 0 {")
		e.pf(depth+2, "%s = make(%s, cnt)", expr, wt.goType)
		e.pf(depth+2, "for %s := 0; %s < cnt; %s++ {", i, i, i)
		e.pf(depth+3, "var %s %s", k, wt.key.goType)
		e.pf(depth+3, "var %s %s", ev, wt.val.goType)
		e.consume(k, wt.key, depth+3)
		e.consume(ev, wt.val, depth+3)
		e.pf(depth+3, "%s[%s] = %s", expr, k, ev)
		e.pf(depth+2, "}")
		e.pf(depth+1, "}")
		e.pf(depth, "}")
	}
}
