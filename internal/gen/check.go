package gen

// CheckCodecs is the lint-facing entry point into codec resolution: where
// ParseFiles fails fast on the first unsupported field (the right behavior
// for the generator), the checker resolves every marked type independently
// and reports all of the rejections, so ermi-vet can surface each one at
// its declaration.

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// CodecCheck is the result of checking one //ermi:codec-marked type.
type CodecCheck struct {
	Name  string
	Pos   token.Pos // position of the type declaration
	Viewy bool      // resolved, and the decoded form aliases the payload buffer
	Err   string    // non-empty: why the generator would reject the type
}

// CheckCodecs resolves every //ermi:codec-marked type declared in files
// (all from one package) against the same rules the generator applies,
// returning one CodecCheck per marked type in declaration-name order.
// Files may include generated siblings; their declarations participate in
// resolution like any other.
func CheckCodecs(files []*ast.File) []CodecCheck {
	decls := typeDecls{}
	marked := map[string]bool{}
	for _, f := range files {
		collectCodecs(f, decls, marked)
	}
	names := make([]string, 0, len(marked))
	for name := range marked {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CodecCheck, 0, len(names))
	for _, name := range names {
		// A fresh resolver per type so one rejected type does not poison
		// the resolution of the others (nested codecs resolve repeatedly;
		// the type graphs here are tiny).
		r := &codecResolver{decls: decls, marked: marked, resolving: map[string]bool{}}
		cc := CodecCheck{Name: name, Pos: decls[name].Pos()}
		c, err := r.codec(name)
		if err != nil {
			cc.Err = strings.TrimPrefix(err.Error(), "gen: ")
		} else {
			cc.Viewy = c.Viewy
		}
		out = append(out, cc)
	}
	return out
}
