package gen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const codecSample = `package demo

//ermi:codec
type Payload struct {
	N     int64
	Name  string
	Data  []byte
	When  time.Duration
	Tags  map[string]int
	Sides []Side
	Inner Nested
}

//ermi:codec
type Nested struct{ OK bool }

type Side int
`

func TestParseExtractsCodecs(t *testing.T) {
	f, err := Parse("codec.go", []byte(codecSample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Codecs) != 2 {
		t.Fatalf("codecs = %d, want 2", len(f.Codecs))
	}
	// Declaration order is preserved.
	if f.Codecs[0].Name != "Payload" || f.Codecs[1].Name != "Nested" {
		t.Fatalf("codec order = %s, %s", f.Codecs[0].Name, f.Codecs[1].Name)
	}
	// []byte makes the holder viewy; Nested has no views.
	if !f.Codecs[0].Viewy {
		t.Fatal("Payload with a []byte field is not marked viewy")
	}
	if f.Codecs[1].Viewy {
		t.Fatal("Nested without views is marked viewy")
	}
}

func TestCodecViewyPropagation(t *testing.T) {
	src := `package p

//ermi:codec
type Outer struct{ In Inner }

//ermi:codec
type Inner struct{ Raw []byte }

//ermi:codec
type ViaSlice struct{ Rows [][]byte }

//ermi:codec
type ViaMap struct{ M map[string][]byte }

//ermi:codec
type Clean struct{ S []string }
`
	f, err := Parse("v.go", []byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	viewy := map[string]bool{}
	for _, c := range f.Codecs {
		viewy[c.Name] = c.Viewy
	}
	for name, want := range map[string]bool{
		"Outer": true, "Inner": true, "ViaSlice": true, "ViaMap": true, "Clean": false,
	} {
		if viewy[name] != want {
			t.Errorf("%s viewy = %v, want %v", name, viewy[name], want)
		}
	}
}

func TestCodecRejectsUnsupportedShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"recursive", `package p
//ermi:codec
type T struct{ Next []T }`},
		{"embedded field", `package p
//ermi:codec
type T struct{ U }
type U struct{ N int }`},
		{"foreign struct", `package p
//ermi:codec
type T struct{ At time.Time }`},
		{"fixed array", `package p
//ermi:codec
type T struct{ Sum [32]byte }`},
		{"pointer field", `package p
//ermi:codec
type T struct{ P *int }`},
		{"interface field", `package p
//ermi:codec
type T struct{ V interface{} }`},
		{"channel field", `package p
//ermi:codec
type T struct{ C chan int }`},
		{"undeclared external type", `package p
//ermi:codec
type T struct{ X Foreign }`},
		{"nested struct without marker", `package p
//ermi:codec
type T struct{ In Inner }
type Inner struct{ N int }`},
		{"named type with non-scalar underlying", `package p
//ermi:codec
type T struct{ S Alias }
type Alias []string`},
		{"non-comparable map key", `package p
//ermi:codec
type T struct{ M map[[]byte]int }`},
		{"marked non-struct", `package p
//ermi:codec
type T []int`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse("x.go", []byte(tc.src)); err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			}
		})
	}
}

// TestCodecMultiFileResolution: a codec type may reference named types
// declared in a sibling source file handed to the same ParseFiles call
// (the -in a.go,b.go form of ermi-gen).
func TestCodecMultiFileResolution(t *testing.T) {
	f, err := ParseFiles([]Source{
		{Name: "a.go", Src: []byte(`package p

//ermi:codec
type Req struct {
	Val  Versioned
	Side Side
}
`)},
		{Name: "b.go", Src: []byte(`package p

//ermi:codec
type Versioned struct {
	Value   []byte
	Version uint64
}

type Side int8
`)},
	})
	if err != nil {
		t.Fatalf("ParseFiles: %v", err)
	}
	if len(f.Codecs) != 2 {
		t.Fatalf("codecs = %d, want 2", len(f.Codecs))
	}
	var req *Codec
	for i := range f.Codecs {
		if f.Codecs[i].Name == "Req" {
			req = &f.Codecs[i]
		}
	}
	if req == nil {
		t.Fatal("Req codec not resolved")
	}
	if !req.Viewy {
		t.Fatal("Req nesting a viewy struct from another file is not viewy")
	}
}

func TestGenerateCodecsCompilesAndIsDeterministic(t *testing.T) {
	f, err := Parse("codec.go", []byte(codecSample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, err := Generate(f, "codec.go")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	src := string(out)
	for _, want := range []string{
		"func (v *Payload) SizeERMI() int",
		"func (v *Payload) MarshalERMI(b []byte) []byte",
		"func (v *Payload) UnmarshalERMI(b []byte) error",
		"func (v *Payload) consumeERMI(b []byte) ([]byte, error)",
		"func (*Payload) ERMIViews() {}",
		"func (v *Nested) SizeERMI() int",
		`"time"`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	// Nested has no view fields: no marker method.
	if strings.Contains(src, "func (*Nested) ERMIViews()") {
		t.Error("Nested grew a spurious ERMIViews marker")
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", out, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	again, err := Generate(f, "codec.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(again) {
		t.Fatal("codec generation is not deterministic")
	}
}
