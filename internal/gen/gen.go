// Package gen implements the ElasticRMI preprocessor for Go — the
// counterpart of the paper's rmic-like tool that "analyzes elastic classes
// to generate stubs and skeletons for client-server communication" (§2.3).
//
// Given a Go source file declaring one or more elastic interfaces — an
// interface whose methods all have the canonical remote signature
//
//	Method(arg ArgType) (ReplyType, error)
//
// and that is marked with a `//ermi:elastic` comment — the generator emits
// a sibling file containing, per interface:
//
//   - a typed client stub (NameStub) whose methods marshal through
//     core.Stub, so the elastic object pool is invoked like a local object;
//   - a skeleton registration function (RegisterName) binding an
//     implementation to a core.Mux method table;
//   - a factory adaptor (NewNameFactory) producing a core.Factory from an
//     application constructor.
package gen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strings"
	"text/template"
)

// Marker is the comment that selects interfaces for generation.
const Marker = "//ermi:elastic"

// AffinityMarker annotates one method of an elastic interface with a key
// extractor: `//ermi:affinity Field` names a string-typed field of the
// argument type, and the generated stub grows a NameWithAffinity variant
// that routes the invocation by consistent-hash affinity on that field
// (same key, same pool member — see core.CallKeyed).
const AffinityMarker = "//ermi:affinity"

// Method is one remote method of an elastic interface.
type Method struct {
	Name      string
	ArgType   string
	ReplyType string
	// KeyField is the argument field named by an //ermi:affinity
	// annotation ("" = no affinity variant generated).
	KeyField string
}

// Service is one elastic interface.
type Service struct {
	Name    string
	Methods []Method
}

// File is the parsed input.
type File struct {
	Package  string
	Services []Service
	Codecs   []Codec
}

// Source is one named input file.
type Source struct {
	Name string
	Src  []byte
}

// Parse extracts the elastic interfaces and codec types from one Go source
// file. See ParseFiles.
func Parse(filename string, src []byte) (*File, error) {
	return ParseFiles([]Source{{Name: filename, Src: src}})
}

// ParseFiles extracts the elastic interfaces and `//ermi:codec` payload
// types from one or more Go source files of the same package. Interfaces
// must be marked with the `//ermi:elastic` comment directly above the type
// declaration (or in its doc group); every method must have the canonical
// signature `Method(arg ArgType) (ReplyType, error)` — anything else is an
// error, mirroring how the paper's preprocessor rejects non-remote-able
// declarations. Codec field resolution sees the named types of every input
// file, so payload structs may nest types declared in a sibling file.
func ParseFiles(inputs []Source) (*File, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("gen: no input files")
	}
	out := &File{}
	decls := typeDecls{}
	codecMarked := map[string]bool{}
	var declOrder []string
	fset := token.NewFileSet()
	for _, in := range inputs {
		f, err := parser.ParseFile(fset, in.Name, in.Src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("gen: parse %s: %w", in.Name, err)
		}
		if out.Package == "" {
			out.Package = f.Name.Name
		} else if out.Package != f.Name.Name {
			return nil, fmt.Errorf("gen: %s is package %s, want %s", in.Name, f.Name.Name, out.Package)
		}
		collectCodecs(f, decls, codecMarked)
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				declOrder = append(declOrder, ts.Name.Name)
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				if !marked(gd.Doc) && !marked(ts.Doc) && !marked(ts.Comment) {
					continue
				}
				svc, err := parseInterface(ts.Name.Name, it)
				if err != nil {
					return nil, err
				}
				out.Services = append(out.Services, svc)
			}
		}
	}
	codecs, err := resolveCodecs(decls, codecMarked, declOrder)
	if err != nil {
		return nil, err
	}
	out.Codecs = codecs
	if len(out.Services) == 0 && len(out.Codecs) == 0 {
		return nil, fmt.Errorf("gen: %s declares no interfaces marked %s and no types marked %s",
			inputs[0].Name, Marker, CodecMarker)
	}
	return out, nil
}

func marked(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == Marker {
			return true
		}
	}
	return false
}

func parseInterface(name string, it *ast.InterfaceType) (Service, error) {
	svc := Service{Name: name}
	for _, field := range it.Methods.List {
		fn, ok := field.Type.(*ast.FuncType)
		if !ok {
			return Service{}, fmt.Errorf("gen: %s embeds another interface; embedding is not supported", name)
		}
		if len(field.Names) == 0 {
			continue
		}
		mname := field.Names[0].Name
		m, err := parseMethod(name, mname, fn)
		if err != nil {
			return Service{}, err
		}
		m.KeyField, err = affinityField(name, mname, field.Doc, field.Comment)
		if err != nil {
			return Service{}, err
		}
		svc.Methods = append(svc.Methods, m)
	}
	if len(svc.Methods) == 0 {
		return Service{}, fmt.Errorf("gen: interface %s has no methods", name)
	}
	return svc, nil
}

// affinityField extracts the //ermi:affinity annotation from a method's
// comment groups. The named field must be a plain identifier; it is
// expected to be a string-typed field of the method's argument type (the
// generated code fails to compile otherwise, which is the diagnostic).
func affinityField(iface, method string, groups ...*ast.CommentGroup) (string, error) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, AffinityMarker) {
				continue
			}
			field := strings.TrimSpace(strings.TrimPrefix(text, AffinityMarker))
			if field == "" || !token.IsIdentifier(field) {
				return "", fmt.Errorf("gen: %s.%s: %s needs a field name, e.g. `%s Key`",
					iface, method, AffinityMarker, AffinityMarker)
			}
			return field, nil
		}
	}
	return "", nil
}

func parseMethod(iface, name string, fn *ast.FuncType) (Method, error) {
	bad := func(why string) (Method, error) {
		return Method{}, fmt.Errorf(
			"gen: %s.%s: %s; elastic methods must look like M(arg A) (R, error)", iface, name, why)
	}
	if fn.Params == nil || len(fn.Params.List) != 1 || len(fn.Params.List[0].Names) > 1 {
		return bad("need exactly one argument")
	}
	if fn.Results == nil || len(fn.Results.List) != 2 {
		return bad("need exactly (Reply, error) results")
	}
	errIdent, ok := fn.Results.List[1].Type.(*ast.Ident)
	if !ok || errIdent.Name != "error" {
		return bad("second result must be error")
	}
	argType, err := typeString(fn.Params.List[0].Type)
	if err != nil {
		return bad(err.Error())
	}
	replyType, err := typeString(fn.Results.List[0].Type)
	if err != nil {
		return bad(err.Error())
	}
	return Method{Name: name, ArgType: argType, ReplyType: replyType}, nil
}

// typeString renders the small subset of type expressions remote signatures
// use: identifiers, qualified identifiers, pointers, slices, maps and
// struct{}.
func typeString(e ast.Expr) (string, error) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, nil
	case *ast.SelectorExpr:
		base, err := typeString(t.X)
		if err != nil {
			return "", err
		}
		return base + "." + t.Sel.Name, nil
	case *ast.StarExpr:
		inner, err := typeString(t.X)
		if err != nil {
			return "", err
		}
		return "*" + inner, nil
	case *ast.ArrayType:
		if t.Len != nil {
			return "", fmt.Errorf("fixed-size arrays are not supported")
		}
		inner, err := typeString(t.Elt)
		if err != nil {
			return "", err
		}
		return "[]" + inner, nil
	case *ast.MapType:
		k, err := typeString(t.Key)
		if err != nil {
			return "", err
		}
		v, err := typeString(t.Value)
		if err != nil {
			return "", err
		}
		return "map[" + k + "]" + v, nil
	case *ast.StructType:
		if t.Fields == nil || len(t.Fields.List) == 0 {
			return "struct{}", nil
		}
		return "", fmt.Errorf("inline struct types are not supported (name them)")
	default:
		return "", fmt.Errorf("unsupported type expression %T", e)
	}
}

var tmpl = template.Must(template.New("gen").Parse(`// Code generated by ermi-gen. DO NOT EDIT.
//
// Stubs, skeletons and payload codecs for {{.Source}} — the output the
// ElasticRMI preprocessor produces for elastic classes (§2.3 of "Elastic
// Remote Methods", MIDDLEWARE 2013).

package {{.Package}}

import (
{{range .Imports}}	{{printf "%q" .}}
{{end}})
{{range .Services}}
// {{.Name}}Stub is the generated client stub for {{.Name}}: the client's
// local representative of the elastic object pool. The existence of a pool
// of objects is known to the stub but not to the client application.
type {{.Name}}Stub struct {
	stub *core.Stub
}

var _ {{.Name}} = (*{{.Name}}Stub)(nil)

// New{{.Name}}Stub wraps a located pool in the typed stub.
func New{{.Name}}Stub(stub *core.Stub) *{{.Name}}Stub {
	return &{{.Name}}Stub{stub: stub}
}

// Lookup{{.Name}} resolves the pool name through the registry and returns
// the typed stub.
func Lookup{{.Name}}(name string, reg *core.RegistryClient, opts ...core.StubOption) (*{{.Name}}Stub, error) {
	s, err := core.LookupStub(name, reg, opts...)
	if err != nil {
		return nil, err
	}
	return New{{.Name}}Stub(s), nil
}

// Close releases the stub's connections.
func (s *{{.Name}}Stub) Close() error { return s.stub.Close() }
{{$svc := .Name}}{{range .Methods}}
// {{.Name}} invokes the remote method on the elastic pool.
func (s *{{$svc}}Stub) {{.Name}}(arg {{.ArgType}}) ({{.ReplyType}}, error) {
	return core.Call[{{.ArgType}}, {{.ReplyType}}](s.stub, {{printf "%q" .Name}}, arg)
}

// {{.Name}}Async starts the invocation without blocking and returns its
// typed future; many calls can be pipelined from one goroutine.
func (s *{{$svc}}Stub) {{.Name}}Async(arg {{.ArgType}}) *core.Future[{{.ReplyType}}] {
	return core.GoCall[{{.ArgType}}, {{.ReplyType}}](s.stub, {{printf "%q" .Name}}, arg)
}

// {{.Name}}OneWay fires the invocation without waiting for — or the pool
// ever sending — a response. Delivery is at-most-once.
func (s *{{$svc}}Stub) {{.Name}}OneWay(arg {{.ArgType}}) error {
	return core.OneWayCall[{{.ArgType}}](s.stub, {{printf "%q" .Name}}, arg)
}
{{if .KeyField}}
// {{.Name}}WithAffinity invokes {{.Name}} routed by consistent-hash key
// affinity on arg.{{.KeyField}}: every invocation carrying the same key
// lands on the same pool member (across all stubs holding the same routing
// table), keeping member-local state for that key hot.
func (s *{{$svc}}Stub) {{.Name}}WithAffinity(arg {{.ArgType}}) ({{.ReplyType}}, error) {
	return core.CallKeyed[{{.ArgType}}, {{.ReplyType}}](s.stub, {{printf "%q" .Name}}, string(arg.{{.KeyField}}), arg)
}
{{end}}{{end}}
// Register{{.Name}} binds an implementation to the method table of a
// skeleton (the generated server-side dispatch).
func Register{{.Name}}(mux *core.Mux, impl {{.Name}}) {
{{- range .Methods}}
	core.Handle(mux, {{printf "%q" .Name}}, impl.{{.Name}})
{{- end}}
}

// New{{.Name}}Factory adapts an application constructor into a core.Factory
// whose objects dispatch through the generated skeleton table.
func New{{.Name}}Factory(newImpl func(ctx *core.MemberContext) ({{.Name}}, error)) core.Factory {
	return func(ctx *core.MemberContext) (core.Object, error) {
		impl, err := newImpl(ctx)
		if err != nil {
			return nil, err
		}
		mux := core.NewMux()
		Register{{.Name}}(mux, impl)
		if sizer, ok := impl.(core.PoolSizer); ok {
			return &sized{{.Name}}Object{mux: mux, sizer: sizer}, nil
		}
		return mux, nil
	}
}

// sized{{.Name}}Object forwards ChangePoolSize when the implementation is
// fine-grained, so the runtime selects the fine policy (§3.3).
type sized{{.Name}}Object struct {
	mux   *core.Mux
	sizer core.PoolSizer
}

// HandleCall implements core.Object.
func (o *sized{{.Name}}Object) HandleCall(method string, arg []byte) ([]byte, error) {
	return o.mux.HandleCall(method, arg)
}

// HandleRequest implements core.RequestHandler: the skeleton's hot path
// keeps the payload's arena lifetime visible to the typed handlers.
func (o *sized{{.Name}}Object) HandleRequest(req *transport.Request) ([]byte, error) {
	return o.mux.HandleRequest(req)
}

// ChangePoolSize implements core.PoolSizer.
func (o *sized{{.Name}}Object) ChangePoolSize() int { return o.sizer.ChangePoolSize() }
{{end}}{{.CodecSource}}`))

// Generate emits the stub/skeleton/codec source for a parsed file.
func Generate(f *File, sourceName string) ([]byte, error) {
	var imports []string
	if len(f.Services) > 0 {
		imports = append(imports, "elasticrmi/internal/core", "elasticrmi/internal/transport")
	}
	if len(f.Codecs) > 0 {
		imports = append(imports, "elasticrmi/internal/ermic")
		if usesDuration(f.Codecs) {
			imports = append(imports, "time")
		}
	}
	var buf bytes.Buffer
	err := tmpl.Execute(&buf, struct {
		Package     string
		Source      string
		Imports     []string
		Services    []Service
		CodecSource string
	}{
		Package: f.Package, Source: sourceName, Imports: imports,
		Services: f.Services, CodecSource: emitCodecs(f.Codecs),
	})
	if err != nil {
		return nil, fmt.Errorf("gen: template: %w", err)
	}
	out, err := format.Source(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("gen: generated code does not format: %w\n%s", err, buf.String())
	}
	return out, nil
}
