// Package agility implements the SPEC elasticity metrics the paper's
// evaluation is built on (§5.1):
//
//   - Agility over [t,t'] divided into N sub-intervals is
//     (1/N)(Σ Excess(i) + Σ Shortage(i)), where Excess(i) =
//     max(0, CapProv(i)-ReqMin(i)) and Shortage(i) =
//     max(0, ReqMin(i)-CapProv(i)). For an ideal system agility is zero.
//   - Provisioning interval: the time needed to bring up or drop a
//     resource, from initiating the request to the resource serving its
//     first request.
package agility

import "time"

// Sample is one sub-interval observation: the capacity provisioned and the
// minimum capacity required to meet the application's QoS at the interval's
// workload level.
type Sample struct {
	At      time.Duration // offset from the start of the measurement period
	CapProv int           // recorded capacity provisioned (compute nodes)
	ReqMin  int           // minimum capacity needed to meet QoS
}

// Excess returns the over-provisioned capacity of the sample.
func (s Sample) Excess() int {
	if s.CapProv > s.ReqMin {
		return s.CapProv - s.ReqMin
	}
	return 0
}

// Shortage returns the under-provisioned capacity of the sample.
func (s Sample) Shortage() int {
	if s.CapProv < s.ReqMin {
		return s.ReqMin - s.CapProv
	}
	return 0
}

// Value returns the sample's contribution to agility: Excess + Shortage.
func (s Sample) Value() int { return s.Excess() + s.Shortage() }

// Agility computes the SPEC agility over the samples: the mean of
// Excess+Shortage. An empty series has agility 0.
func Agility(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0
	for _, s := range samples {
		sum += s.Value()
	}
	return float64(sum) / float64(len(samples))
}

// Series computes the per-sample agility values, i.e. the curve Figures
// 7c-7j plot.
func Series(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s.Value())
	}
	return out
}

// ZeroFraction reports the fraction of samples with agility exactly zero —
// the paper's "oscillates between 0 and a positive value" observation for
// ElasticRMI.
func ZeroFraction(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	zero := 0
	for _, s := range samples {
		if s.Value() == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(samples))
}

// MeanExcess returns the average excess across samples.
func MeanExcess(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0
	for _, s := range samples {
		sum += s.Excess()
	}
	return float64(sum) / float64(len(samples))
}

// MeanShortage returns the average shortage across samples.
func MeanShortage(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0
	for _, s := range samples {
		sum += s.Shortage()
	}
	return float64(sum) / float64(len(samples))
}

// ProvisioningEvent is one resource bring-up, for the provisioning-interval
// plots of Fig. 8.
type ProvisioningEvent struct {
	At      time.Duration // when the request was initiated
	Latency time.Duration // request initiation → first request served
}

// MaxLatency returns the largest provisioning latency in the series.
func MaxLatency(events []ProvisioningEvent) time.Duration {
	var max time.Duration
	for _, e := range events {
		if e.Latency > max {
			max = e.Latency
		}
	}
	return max
}

// MeanLatency returns the average provisioning latency.
func MeanLatency(events []ProvisioningEvent) time.Duration {
	if len(events) == 0 {
		return 0
	}
	var sum time.Duration
	for _, e := range events {
		sum += e.Latency
	}
	return sum / time.Duration(len(events))
}
