package agility

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSampleExcessShortage(t *testing.T) {
	tests := []struct {
		name     string
		s        Sample
		excess   int
		shortage int
	}{
		{"exact", Sample{CapProv: 5, ReqMin: 5}, 0, 0},
		{"over", Sample{CapProv: 8, ReqMin: 5}, 3, 0},
		{"under", Sample{CapProv: 2, ReqMin: 5}, 0, 3},
		{"zero", Sample{}, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Excess(); got != tc.excess {
				t.Errorf("excess = %d, want %d", got, tc.excess)
			}
			if got := tc.s.Shortage(); got != tc.shortage {
				t.Errorf("shortage = %d, want %d", got, tc.shortage)
			}
			if got := tc.s.Value(); got != tc.excess+tc.shortage {
				t.Errorf("value = %d", got)
			}
		})
	}
}

func TestAgilityMean(t *testing.T) {
	samples := []Sample{
		{CapProv: 5, ReqMin: 5}, // 0
		{CapProv: 7, ReqMin: 5}, // 2
		{CapProv: 3, ReqMin: 5}, // 2
		{CapProv: 9, ReqMin: 5}, // 4
	}
	if got := Agility(samples); got != 2 {
		t.Fatalf("agility = %v, want 2", got)
	}
	if got := Agility(nil); got != 0 {
		t.Fatalf("agility(nil) = %v", got)
	}
}

func TestSeriesAndZeroFraction(t *testing.T) {
	samples := []Sample{
		{CapProv: 5, ReqMin: 5},
		{CapProv: 6, ReqMin: 5},
		{CapProv: 5, ReqMin: 5},
		{CapProv: 1, ReqMin: 5},
	}
	series := Series(samples)
	want := []float64{0, 1, 0, 4}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series = %v, want %v", series, want)
		}
	}
	if zf := ZeroFraction(samples); zf != 0.5 {
		t.Fatalf("zero fraction = %v, want 0.5", zf)
	}
	if ZeroFraction(nil) != 0 {
		t.Fatal("zero fraction of empty series")
	}
}

func TestMeanExcessShortage(t *testing.T) {
	samples := []Sample{
		{CapProv: 8, ReqMin: 5},
		{CapProv: 2, ReqMin: 5},
	}
	if got := MeanExcess(samples); got != 1.5 {
		t.Fatalf("mean excess = %v", got)
	}
	if got := MeanShortage(samples); got != 1.5 {
		t.Fatalf("mean shortage = %v", got)
	}
}

// Properties of the SPEC agility metric:
//   - non-negative;
//   - zero iff provisioned tracks required exactly;
//   - invariant under sample order (it is a mean);
//   - exactly |cap-req| for a single sample.
func TestAgilityProperties(t *testing.T) {
	type pair struct{ Cap, Req uint8 }
	prop := func(pairs []pair) bool {
		samples := make([]Sample, len(pairs))
		exact := true
		for i, p := range pairs {
			samples[i] = Sample{CapProv: int(p.Cap), ReqMin: int(p.Req)}
			if p.Cap != p.Req {
				exact = false
			}
		}
		a := Agility(samples)
		if a < 0 {
			return false
		}
		if len(samples) > 0 && exact && a != 0 {
			return false
		}
		if len(samples) > 0 && !exact && a == 0 {
			return false
		}
		// Order invariance: reverse.
		rev := make([]Sample, len(samples))
		for i := range samples {
			rev[i] = samples[len(samples)-1-i]
		}
		return Agility(rev) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProvisioningLatencyAggregates(t *testing.T) {
	events := []ProvisioningEvent{
		{At: 0, Latency: 10 * time.Second},
		{At: time.Minute, Latency: 30 * time.Second},
		{At: 2 * time.Minute, Latency: 20 * time.Second},
	}
	if got := MaxLatency(events); got != 30*time.Second {
		t.Fatalf("max = %v", got)
	}
	if got := MeanLatency(events); got != 20*time.Second {
		t.Fatalf("mean = %v", got)
	}
	if MeanLatency(nil) != 0 || MaxLatency(nil) != 0 {
		t.Fatal("empty aggregates")
	}
}
