package group

import "testing"

func benchMembers(b *testing.B, n int) []*Member {
	b.Helper()
	members := make([]*Member, n)
	addrs := make([]string, n)
	for i := range members {
		m, err := NewMember(Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { m.Close() })
		members[i] = m
		addrs[i] = m.Addr()
	}
	view := View{ID: 1, Members: addrs}
	for _, m := range members {
		if err := m.InstallView(view); err != nil {
			b.Fatal(err)
		}
	}
	return members
}

// BenchmarkBroadcast5 measures one broadcast to a 5-member view (the pool
// state dissemination path).
func BenchmarkBroadcast5(b *testing.B) {
	members := benchMembers(b, 5)
	payload := make([]byte, 256)
	// Drain receivers so buffers never fill.
	for _, m := range members {
		m := m
		go func() {
			for range m.Messages() {
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := members[0].Broadcast("bench", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointToPoint measures one member-to-member message (the Paxos
// round-trip building block).
func BenchmarkPointToPoint(b *testing.B) {
	members := benchMembers(b, 2)
	go func() {
		for range members[1].Messages() {
		}
	}()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := members[0].Send(members[1].Addr(), "bench", payload); err != nil {
			b.Fatal(err)
		}
	}
}
