package group

import (
	"testing"
	"time"
)

func startMembers(t *testing.T, n int, heartbeat time.Duration) []*Member {
	t.Helper()
	members := make([]*Member, n)
	addrs := make([]string, n)
	for i := range members {
		m, err := NewMember(Config{HeartbeatInterval: heartbeat})
		if err != nil {
			t.Fatalf("NewMember: %v", err)
		}
		t.Cleanup(func() { m.Close() })
		members[i] = m
		addrs[i] = m.Addr()
	}
	view := View{ID: 1, Members: addrs}
	// Coordinator installs and pushes; install locally on all for
	// deterministic startup.
	for _, m := range members {
		if err := m.InstallView(view); err != nil {
			t.Fatalf("InstallView: %v", err)
		}
	}
	return members
}

// waitUntil polls cond until it holds or the deadline fails the test —
// the shared readiness-poll idiom (see ermitest's waitUntil), replacing
// hand-rolled sleep loops.
func waitUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func collect(t *testing.T, m *Member, n int, timeout time.Duration) []Message {
	t.Helper()
	var out []Message
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case msg := <-m.Messages():
			out = append(out, msg)
		case <-deadline:
			t.Fatalf("received %d/%d messages before timeout", len(out), n)
		}
	}
	return out
}

// TestBroadcastReachesAllIncludingSelf and TestPointToPointSend moved to
// harness_test.go (package group_test), where they run on the shared
// ermitest spin-up helpers.

func TestSelfSendDeliversLocally(t *testing.T) {
	members := startMembers(t, 2, 0)
	if err := members[0].Send(members[0].Addr(), "self", nil); err != nil {
		t.Fatalf("self send: %v", err)
	}
	msgs := collect(t, members[0], 1, time.Second)
	if msgs[0].Topic != "self" {
		t.Fatalf("got %+v", msgs[0])
	}
}

func TestViewPropagationFromCoordinator(t *testing.T) {
	a, err := NewMember(Config{})
	if err != nil {
		t.Fatalf("NewMember: %v", err)
	}
	defer a.Close()
	b, err := NewMember(Config{})
	if err != nil {
		t.Fatalf("NewMember: %v", err)
	}
	defer b.Close()

	view := View{ID: 5, Members: []string{a.Addr(), b.Addr()}}
	if err := a.InstallView(view); err != nil {
		t.Fatalf("InstallView: %v", err)
	}
	// b learns the view from the coordinator push.
	waitUntil(t, "view 5 to propagate to b", 2*time.Second, func() bool {
		return b.View().ID == 5
	})
	if got := b.View(); len(got.Members) != 2 {
		t.Fatalf("b view = %+v, want pushed view 5", got)
	}
	// Stale views must not regress the installed one.
	if err := a.InstallView(View{ID: 3, Members: []string{a.Addr()}}); err != nil {
		t.Fatalf("InstallView stale: %v", err)
	}
	if b.View().ID != 5 {
		t.Fatalf("b regressed to view %d", b.View().ID)
	}
}

func TestFailureDetection(t *testing.T) {
	members := startMembers(t, 2, 20*time.Millisecond)
	victim := members[1]
	victimAddr := victim.Addr()
	victim.Close()

	select {
	case failed := <-members[0].Failures():
		if failed != victimAddr {
			t.Fatalf("failure report = %s, want %s", failed, victimAddr)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no failure detected")
	}
}

func TestViewContains(t *testing.T) {
	v := View{ID: 1, Members: []string{"a", "b"}}
	if !v.Contains("a") || v.Contains("c") {
		t.Fatalf("Contains misbehaves: %+v", v)
	}
}

func TestClosedMemberRejectsOps(t *testing.T) {
	m, err := NewMember(Config{})
	if err != nil {
		t.Fatalf("NewMember: %v", err)
	}
	m.Close()
	if err := m.Broadcast("t", nil); err != ErrClosed {
		t.Fatalf("Broadcast after close = %v, want ErrClosed", err)
	}
	if err := m.InstallView(View{ID: 1}); err != ErrClosed {
		t.Fatalf("InstallView after close = %v, want ErrClosed", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
