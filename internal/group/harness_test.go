// Group tests running on the shared ermitest harness (external test
// package: ermitest depends on group, so they cannot live in package
// group). TestBroadcastReachesAllIncludingSelf and TestPointToPointSend
// migrated here from group_test.go.
package group_test

import (
	"testing"
	"time"

	"elasticrmi/internal/ermitest"
)

func TestBroadcastReachesAllIncludingSelf(t *testing.T) {
	members := ermitest.StartGroup(t, 3, 0)
	if err := members[0].Broadcast("topic", []byte("hello")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for i, m := range members {
		msgs := ermitest.Collect(t, m, 1, 2*time.Second)
		if msgs[0].Topic != "topic" || string(msgs[0].Payload) != "hello" {
			t.Fatalf("member %d got %+v", i, msgs[0])
		}
		if msgs[0].From != members[0].Addr() {
			t.Fatalf("member %d sender = %s, want %s", i, msgs[0].From, members[0].Addr())
		}
		if msgs[0].ViewID != 1 {
			t.Fatalf("member %d viewID = %d, want 1", i, msgs[0].ViewID)
		}
	}
}

func TestPointToPointSend(t *testing.T) {
	members := ermitest.StartGroup(t, 3, 0)
	if err := members[1].Send(members[2].Addr(), "direct", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msgs := ermitest.Collect(t, members[2], 1, 2*time.Second)
	if msgs[0].Topic != "direct" {
		t.Fatalf("got %+v", msgs[0])
	}
	// Nobody else receives it.
	select {
	case m := <-members[0].Messages():
		t.Fatalf("member 0 received %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}
