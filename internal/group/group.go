// Package group implements the group-communication substrate the paper
// borrows from JGroups (§4.3): membership views, best-effort broadcast
// within a view, point-to-point messages and heartbeat failure detection.
//
// The ElasticRMI sentinel uses it to periodically broadcast the state of the
// elastic object pool (member identities, pending-invocation counts) to all
// skeletons, and to learn about skeleton failures so re-election and
// rebalancing can run.
package group

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elasticrmi/internal/simclock"
	"elasticrmi/internal/transport"
)

// ErrClosed is returned for operations on a closed member.
var ErrClosed = errors.New("group: member closed")

// serviceName is the transport service for group traffic.
const serviceName = "group"

// Message is a payload delivered to a member.
type Message struct {
	From    string
	Topic   string
	Payload []byte
	ViewID  uint64
}

// View is an installed membership view.
type View struct {
	ID      uint64
	Members []string // transport addresses, coordinator first
}

// Contains reports whether addr is in the view.
func (v View) Contains(addr string) bool {
	for _, m := range v.Members {
		if m == addr {
			return true
		}
	}
	return false
}

// Config configures a member.
type Config struct {
	// Addr is the listen address (":0" for any port).
	Addr string
	// HeartbeatInterval is how often view members are pinged. Zero disables
	// failure detection.
	HeartbeatInterval time.Duration
	// FailureTimeout is how long a peer may be silent before being
	// suspected. Defaults to 3x the heartbeat interval.
	FailureTimeout time.Duration
	// Clock is the time source; nil means wall clock.
	Clock simclock.Clock
}

type wireMsg struct {
	From    string
	Topic   string
	Payload []byte
	ViewID  uint64
}

type wireView struct {
	View View
}

// Member is one endpoint of the group.
type Member struct {
	clock   simclock.Clock
	srv     *transport.Server
	addr    string
	hbEvery time.Duration
	hbDead  time.Duration

	// epoch is the membership-epoch counter (see NextEpoch). It advances
	// past every view this member observes, so epochs allocated here are
	// always newer than any installed view.
	epoch atomic.Uint64

	// conns dials and caches one client per peer with a per-address
	// singleflight guard, outside the member lock.
	conns *transport.ConnCache

	mu       sync.Mutex
	view     View
	lastSeen map[string]time.Time
	closed   bool

	msgs  chan Message
	fails chan string
	stop  chan struct{}
	done  chan struct{}
}

// NewMember starts a member listening on cfg.Addr.
func NewMember(cfg Config) (*Member, error) {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.HeartbeatInterval > 0 && cfg.FailureTimeout == 0 {
		cfg.FailureTimeout = 3 * cfg.HeartbeatInterval
	}
	m := &Member{
		clock:    cfg.Clock,
		hbEvery:  cfg.HeartbeatInterval,
		hbDead:   cfg.FailureTimeout,
		conns:    transport.NewConnCache(2 * time.Second),
		lastSeen: make(map[string]time.Time),
		msgs:     make(chan Message, 128),
		fails:    make(chan string, 16),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := transport.Serve(addr, m.handle)
	if err != nil {
		return nil, fmt.Errorf("group member: %w", err)
	}
	m.srv = srv
	m.addr = srv.Addr()
	if m.hbEvery > 0 {
		go m.heartbeatLoop()
	} else {
		close(m.done)
	}
	return m, nil
}

// Addr returns the member's transport address (its identity).
func (m *Member) Addr() string { return m.addr }

// NextEpoch allocates the next membership epoch: a monotonically
// increasing stamp for view changes. The view coordinator calls it once
// per change and installs the view with ID = epoch, so every roster and
// routing table derived from the view carries the same total order.
// Epochs start at 1; 0 is reserved for "no view yet" (bootstrap clients).
func (m *Member) NextEpoch() uint64 { return m.epoch.Add(1) }

// Epoch returns the newest membership epoch this member has allocated or
// observed through an installed view.
func (m *Member) Epoch() uint64 { return m.epoch.Load() }

// observeEpoch advances the counter past an externally stamped view.
func (m *Member) observeEpoch(id uint64) {
	for {
		cur := m.epoch.Load()
		if id <= cur || m.epoch.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Messages delivers broadcast and point-to-point messages.
func (m *Member) Messages() <-chan Message { return m.msgs }

// Failures delivers addresses of suspected-failed view members.
func (m *Member) Failures() <-chan string { return m.fails }

// View returns the currently installed view.
func (m *Member) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.view
	v.Members = append([]string(nil), m.view.Members...)
	return v
}

// InstallView installs v locally. If this member is the view coordinator
// (first member), the view is also pushed to all other members.
func (m *Member) InstallView(v View) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.view = View{ID: v.ID, Members: append([]string(nil), v.Members...)}
	m.observeEpoch(v.ID)
	now := m.clock.Now()
	for _, peer := range v.Members {
		m.lastSeen[peer] = now
	}
	coordinator := len(v.Members) > 0 && v.Members[0] == m.addr
	peers := append([]string(nil), v.Members...)
	m.mu.Unlock()

	if !coordinator {
		return nil
	}
	payload, err := transport.Encode(wireView{View: v})
	if err != nil {
		return err
	}
	var firstErr error
	for _, peer := range peers {
		if peer == m.addr {
			continue
		}
		if err := m.send(peer, "View", payload); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("push view to %s: %w", peer, err)
		}
	}
	return firstErr
}

// Broadcast sends topic/payload to every member of the current view,
// including self (self-delivery is local). Delivery is best effort; the
// first error is returned but remaining members are still attempted.
func (m *Member) Broadcast(topic string, payload []byte) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	v := m.view
	peers := append([]string(nil), v.Members...)
	m.mu.Unlock()

	wire, err := transport.Encode(wireMsg{From: m.addr, Topic: topic, Payload: payload, ViewID: v.ID})
	if err != nil {
		return err
	}
	var firstErr error
	for _, peer := range peers {
		if peer == m.addr {
			m.deliver(Message{From: m.addr, Topic: topic, Payload: payload, ViewID: v.ID})
			continue
		}
		if err := m.send(peer, "Deliver", wire); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("broadcast to %s: %w", peer, err)
		}
	}
	return firstErr
}

// Send delivers topic/payload to one member.
func (m *Member) Send(to, topic string, payload []byte) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	viewID := m.view.ID
	m.mu.Unlock()
	if to == m.addr {
		m.deliver(Message{From: m.addr, Topic: topic, Payload: payload, ViewID: viewID})
		return nil
	}
	wire, err := transport.Encode(wireMsg{From: m.addr, Topic: topic, Payload: payload, ViewID: viewID})
	if err != nil {
		return err
	}
	return m.send(to, "Deliver", wire)
}

func (m *Member) deliver(msg Message) {
	select {
	case m.msgs <- msg:
	default: // drop under backpressure rather than wedge the sender
	}
}

func (m *Member) client(addr string) (*transport.Client, error) {
	c, err := m.conns.Get(addr)
	if errors.Is(err, transport.ErrClosed) {
		return nil, ErrClosed
	}
	return c, err
}

func (m *Member) dropClient(addr string) {
	m.conns.Drop(addr)
}

func (m *Member) send(addr, method string, payload []byte) error {
	c, err := m.client(addr)
	if err != nil {
		return err
	}
	if _, err := c.Call(serviceName, method, payload, 5*time.Second); err != nil {
		m.dropClient(addr)
		return err
	}
	return nil
}

func (m *Member) handle(req *transport.Request) ([]byte, error) {
	if req.Service != serviceName {
		return nil, fmt.Errorf("unknown service %q", req.Service)
	}
	switch req.Method {
	case "Deliver":
		var w wireMsg
		if err := transport.Decode(req.Payload, &w); err != nil {
			return nil, err
		}
		m.mu.Lock()
		m.lastSeen[w.From] = m.clock.Now()
		m.mu.Unlock()
		m.deliver(Message{From: w.From, Topic: w.Topic, Payload: w.Payload, ViewID: w.ViewID})
		return nil, nil
	case "View":
		var w wireView
		if err := transport.Decode(req.Payload, &w); err != nil {
			return nil, err
		}
		m.mu.Lock()
		if w.View.ID >= m.view.ID {
			m.view = View{ID: w.View.ID, Members: append([]string(nil), w.View.Members...)}
			m.observeEpoch(w.View.ID)
			now := m.clock.Now()
			for _, peer := range w.View.Members {
				m.lastSeen[peer] = now
			}
		}
		m.mu.Unlock()
		return nil, nil
	case "Ping":
		var w wireMsg
		if err := transport.Decode(req.Payload, &w); err == nil {
			m.mu.Lock()
			m.lastSeen[w.From] = m.clock.Now()
			m.mu.Unlock()
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown method %q", req.Method)
	}
}

func (m *Member) heartbeatLoop() {
	defer close(m.done)
	ping := transport.MustEncode(wireMsg{From: m.addr})
	for {
		select {
		case <-m.stop:
			return
		case <-m.clock.After(m.hbEvery):
		}
		m.mu.Lock()
		peers := append([]string(nil), m.view.Members...)
		m.mu.Unlock()
		now := m.clock.Now()
		for _, peer := range peers {
			if peer == m.addr {
				continue
			}
			err := m.send(peer, "Ping", ping)
			m.mu.Lock()
			if err == nil {
				m.lastSeen[peer] = now
				m.mu.Unlock()
				continue
			}
			last, seen := m.lastSeen[peer]
			m.mu.Unlock()
			if !seen || now.Sub(last) >= m.hbDead {
				select {
				case m.fails <- peer:
				default:
				}
			}
		}
	}
}

// Close shuts the member down and waits for its background work to stop.
func (m *Member) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	m.conns.Close()
	err := m.srv.Close()
	<-m.done
	return err
}
