// Package benchsim is the deployment simulator that regenerates the paper's
// evaluation (Figures 7c-7j, 8a, 8b and the §5.5 summary numbers).
//
// The paper runs four applications for 450-500 minutes on a Mesos cluster
// under four deployments — ElasticRMI (fine-grained application metrics),
// ElasticRMI-CPUMem (same runtime, CPU/RAM thresholds only), Amazon
// CloudWatch+AutoScaling, and Overprovisioning — and reports the SPEC
// agility metric and provisioning intervals. Those curves are functions of
// the workload pattern, the scaling-decision code, the provisioning-latency
// regime and the application's capacity requirement. benchsim models the
// last two and drives the *same* policy implementations the live runtime
// uses (core.FinePolicy, core.CoarsePolicy), stepping a virtual minute at a
// time, so a 500-minute experiment replays in microseconds.
//
// Calibration: per-application Points A/B are the paper's (§5.3); per-node
// service rates are chosen so the peak pool sizes and agility magnitudes
// land in the ranges Figures 7c-7j show. Absolute values are not the claim —
// the *shape* is: ElasticRMI lowest and oscillating to zero, CPUMem ≈
// CloudWatch ≈ ~3-7x worse, Overprovisioning worst on average with zero
// agility only at peak.
package benchsim

import (
	"math"
	"time"

	"elasticrmi/internal/agility"
	"elasticrmi/internal/core"
	"elasticrmi/internal/workload"
)

// Deployment identifies one of the four compared deployments (§5.4).
type Deployment string

// The four deployments of the evaluation.
const (
	// DeployElasticRMI uses fine-grained application metrics via
	// ChangePoolSize (the paper's system).
	DeployElasticRMI Deployment = "ElasticRMI"
	// DeployElasticRMICPUMem is the ElasticRMI runtime restricted to
	// CPU/Memory utilization conditions (the ElasticRMI-CPUMem baseline).
	DeployElasticRMICPUMem Deployment = "ElasticRMI-CPUMem"
	// DeployCloudWatch is Amazon CloudWatch + AutoScaling: the same
	// CPU/Memory conditions with VM-provisioning latency in minutes.
	DeployCloudWatch Deployment = "CloudWatch"
	// DeployOverprovision provisions for the known peak ahead of time.
	DeployOverprovision Deployment = "Overprovisioning"
)

// Deployments lists all four in plot order.
func Deployments() []Deployment {
	return []Deployment{DeployElasticRMI, DeployOverprovision, DeployCloudWatch, DeployElasticRMICPUMem}
}

// AppModel captures how one evaluation application turns offered load into a
// minimum capacity requirement (ReqMin) and how its members perceive that
// load, mirroring each application's real ChangePoolSize logic in
// internal/apps.
type AppModel struct {
	// Name of the application.
	Name string
	// PeakA is Point A, the peak of the abrupt workload, in requests/s
	// (orders, messages, consensus rounds, updates).
	PeakA float64
	// PerNode is the per-member service capacity in requests/s at the QoS
	// target.
	PerNode float64
	// BaseNodes is load-independent capacity (e.g. replication overhead).
	BaseNodes int
	// ErraticNodes is the amplitude (in nodes) of deterministic ReqMin
	// wobble; Hedwig's replication and at-most-once bookkeeping make its
	// requirement "change more erratically" (§5.5).
	ErraticNodes float64
}

// PeakB is Point B, 20% above Point A (§5.3).
func (m AppModel) PeakB() float64 { return 1.2 * m.PeakA }

// ReqMin returns the minimum node count meeting QoS at the given offered
// rate and experiment time.
func (m AppModel) ReqMin(rate float64, t time.Duration) int {
	nodes := rate / m.PerNode
	if m.ErraticNodes > 0 {
		min := t.Minutes()
		wobble := m.ErraticNodes * (0.6*math.Sin(0.9*min) + 0.4*math.Sin(0.23*min+1.3))
		// The wobble scales with load: redistribution work only exists when
		// there is traffic to redistribute.
		nodes += wobble * math.Min(1, rate/m.PerNode/4)
	}
	req := m.BaseNodes + int(math.Ceil(nodes))
	if req < 2 {
		req = 2 // an elastic class always has at least two objects
	}
	return req
}

// The four evaluation applications (§5.2) with the paper's Point A values.

// MarketceteraModel is the order-routing subsystem: A = 50 000 orders/s,
// with 2-way persistence of every order (BaseNodes covers the persistence
// pair).
func MarketceteraModel() AppModel {
	return AppModel{Name: "Marketcetera", PeakA: 50000, PerNode: 1600, BaseNodes: 2}
}

// HedwigModel is the pub/sub system: A = 30 000 msgs/s; topic ownership
// redistribution and at-most-once delivery make ReqMin erratic.
func HedwigModel() AppModel {
	return AppModel{Name: "Hedwig", PeakA: 30000, PerNode: 1250, BaseNodes: 2, ErraticNodes: 1.6}
}

// PaxosModel is the consensus service: A = 24 000 rounds/s; consensus
// quorums keep pools smaller.
func PaxosModel() AppModel {
	return AppModel{Name: "Paxos", PeakA: 24000, PerNode: 2400, BaseNodes: 3}
}

// DCSModel is the coordination service: A = 75 000 updates/s with totally
// ordered updates.
func DCSModel() AppModel {
	return AppModel{Name: "DCS", PeakA: 75000, PerNode: 6000, BaseNodes: 2}
}

// Models returns the four applications in the paper's order.
func Models() []AppModel {
	return []AppModel{MarketceteraModel(), HedwigModel(), PaxosModel(), DCSModel()}
}

// PlotPoint is one plotted agility value: the mean of Excess+Shortage over
// the sub-intervals of one sampling window (the 10-minute sampling of §5.5).
type PlotPoint struct {
	At      time.Duration
	Agility float64
}

// Result is one deployment's run over one workload.
type Result struct {
	App        string
	Deployment Deployment
	Pattern    string
	// Samples are the per-step (1-minute) observations.
	Samples []agility.Sample
	// Plotted is the 10-minute-window series of Figures 7c-7j.
	Plotted []PlotPoint
	// Provisioning holds one event per scale-up (Fig. 8).
	Provisioning []agility.ProvisioningEvent
}

// AvgAgility is the SPEC agility over the full run.
func (r Result) AvgAgility() float64 { return agility.Agility(r.Samples) }

// ZeroFraction is the fraction of steps with zero agility.
func (r Result) ZeroFraction() float64 { return agility.ZeroFraction(r.Samples) }

// MaxProvisioningLatency is the worst provisioning interval of the run.
func (r Result) MaxProvisioningLatency() time.Duration {
	return agility.MaxLatency(r.Provisioning)
}

// RunConfig configures one simulated deployment run.
type RunConfig struct {
	App     AppModel
	Pattern workload.Pattern
	Deploy  Deployment
	// Step is the simulation step; default one minute (the ElasticRMI burst
	// interval used in the evaluation).
	Step time.Duration
	// SampleEvery is the plot sampling window; default 10 minutes (§5.5).
	SampleEvery time.Duration
	// MaxPool bounds the pool; default 64.
	MaxPool int

	// Ablation knobs (defaults reproduce the paper; the Ablation* benches
	// sweep them to quantify each design choice).

	// FineDeltaCap bounds each member's ChangePoolSize return; default 2
	// (Fig. 5 returns increments of two). 0 keeps the default; negative
	// means unbounded.
	FineDeltaCap int
	// DisableCommonModeError removes the shared estimation error, modelling
	// members with perfect backlog observability.
	DisableCommonModeError bool
	// ThresholdPeriodSteps overrides the CloudWatch/CPUMem monitoring
	// period (in steps); default 5.
	ThresholdPeriodSteps int
	// CloudWatchLatencyScale multiplies the VM provisioning latency;
	// default 1.
	CloudWatchLatencyScale float64
}

func (c *RunConfig) withDefaults() RunConfig {
	out := *c
	if out.Step == 0 {
		out.Step = time.Minute
	}
	if out.SampleEvery == 0 {
		out.SampleEvery = 10 * time.Minute
	}
	if out.MaxPool == 0 {
		out.MaxPool = 64
	}
	if out.FineDeltaCap == 0 {
		out.FineDeltaCap = 2
	}
	if out.ThresholdPeriodSteps == 0 {
		out.ThresholdPeriodSteps = thresholdPeriodSteps
	}
	if out.CloudWatchLatencyScale == 0 {
		out.CloudWatchLatencyScale = 1
	}
	return out
}

// Run simulates one deployment over one workload pattern.
func Run(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	d := newDeploymentSim(cfg)
	res := Result{
		App:        cfg.App.Name,
		Deployment: cfg.Deploy,
		Pattern:    cfg.Pattern.Name(),
	}
	steps := int(cfg.Pattern.Duration() / cfg.Step)
	for i := 0; i <= steps; i++ {
		t := time.Duration(i) * cfg.Step
		rate := cfg.Pattern.Rate(t)
		req := cfg.App.ReqMin(rate, t)
		capProv, events := d.step(t, rate, req)
		res.Samples = append(res.Samples, agility.Sample{At: t, CapProv: capProv, ReqMin: req})
		res.Provisioning = append(res.Provisioning, events...)
	}
	res.Plotted = plotWindows(res.Samples, cfg.Step, cfg.SampleEvery)
	return res
}

func plotWindows(samples []agility.Sample, step, window time.Duration) []PlotPoint {
	if len(samples) == 0 {
		return nil
	}
	per := int(window / step)
	if per <= 0 {
		per = 1
	}
	var out []PlotPoint
	for start := 0; start < len(samples); start += per {
		end := start + per
		if end > len(samples) {
			end = len(samples)
		}
		sum := 0
		for _, s := range samples[start:end] {
			sum += s.Value()
		}
		out = append(out, PlotPoint{
			At:      samples[start].At,
			Agility: float64(sum) / float64(end-start),
		})
	}
	return out
}

// deploymentSim is the per-deployment scaling state machine. It reuses the
// live runtime's policy implementations.
type deploymentSim struct {
	cfg  RunConfig
	size int
	// pendingAdds models in-flight VM provisioning for CloudWatch: capacity
	// requested but not yet serving.
	pendingAdds []pendingAdd
	peakReq     int
	// lagReq is the requirement observed during the previous step: scaling
	// decisions are made on metrics averaged over the completed burst
	// interval, not the instantaneous load.
	lagReq int
}

type pendingAdd struct {
	ready time.Time
	n     int
}

// thresholdPeriodSteps is the monitoring period of the CPU/RAM-threshold
// deployments (CloudWatch alarms and the ElasticRMI-CPUMem burst interval of
// the Fig. 4b example): five one-minute steps.
const thresholdPeriodSteps = 5

func newDeploymentSim(cfg RunConfig) *deploymentSim {
	d := &deploymentSim{cfg: cfg}
	// Peak requirement, known a priori to the overprovisioning oracle.
	peak := 0
	for t := time.Duration(0); t <= cfg.Pattern.Duration(); t += cfg.Step {
		if r := cfg.App.ReqMin(cfg.Pattern.Rate(t), t); r > peak {
			peak = r
		}
	}
	d.peakReq = peak
	switch cfg.Deploy {
	case DeployOverprovision:
		d.size = peak
		if d.size > cfg.MaxPool {
			// Even the oracle cannot provision beyond the cluster bound.
			d.size = cfg.MaxPool
		}
	default:
		d.size = cfg.App.ReqMin(cfg.Pattern.Rate(0), 0)
		if d.size < 2 {
			d.size = 2
		}
	}
	return d
}

// avgCPU is the utilization model shared by the threshold deployments: each
// member serves an equal share of the offered load against its PerNode
// capacity. RAM tracks CPU with a fill factor, standing in for
// queue/buffer occupancy.
func (d *deploymentSim) avgCPU(rate float64) float64 {
	util := 100 * rate / (float64(d.size) * d.cfg.App.PerNode)
	if util > 100 {
		util = 100
	}
	return util
}

func (d *deploymentSim) avgRAM(rate float64) float64 {
	return 0.8 * d.avgCPU(rate)
}

// shedCount models the members' admission controllers: offered invocations
// beyond the pool's capacity (size × PerNode) are shed during the step. It
// is the same overload signal the live runtime folds into PoolMetrics, so
// the simulated and the production policies decide on identical inputs.
func (d *deploymentSim) shedCount(rate float64) int64 {
	over := rate - float64(d.size)*d.cfg.App.PerNode
	if over <= 0 {
		return 0
	}
	return int64(over * d.cfg.Step.Seconds())
}

// fineDeltas mirrors the applications' ChangePoolSize implementations: each
// member estimates the required pool size from its own backlog (queue
// depth, lock contention, pending proposals). The estimate is based on the
// *previous* burst interval's workload (metrics are averages over the
// completed window), differs per member by a deterministic +/-1 observation
// error, and each member requests at most +/-2 objects per interval — the
// increment the paper's CacheExplicit2 example returns (Fig. 5).
func (d *deploymentSim) fineDeltas(lagReq int, t time.Duration) []int {
	deltas := make([]int, d.size)
	bias := 0
	if !d.cfg.DisableCommonModeError {
		bias = commonModeError(t, d.size)
	}
	maxDelta := d.cfg.FineDeltaCap
	for i := range deltas {
		est := lagReq + bias + memberNoise(i, t)
		delta := est - d.size
		if maxDelta > 0 {
			if delta > maxDelta {
				delta = maxDelta
			}
			if delta < -maxDelta {
				delta = -maxDelta
			}
		}
		deltas[i] = delta
	}
	return deltas
}

// commonModeError is the slowly varying shared error of queue-based
// capacity estimation: all members read the same queues and locks, so their
// estimates share a bias that averaging cannot remove. It is what keeps the
// measured ElasticRMI agility "close to 1 most of the time" instead of
// pinned at zero (§5.5), oscillating between zero and a positive value.
// The error is proportional to the amount of shared state consulted, i.e.
// it grows with the pool: a 30-node Marketcetera pool mis-estimates by +/-2
// nodes where a 10-node Paxos pool mis-estimates by at most one.
func commonModeError(t time.Duration, size int) int {
	min := t.Minutes()
	amp := float64(size) / 18
	if amp > 1.4 {
		amp = 1.4
	}
	if amp < 0.35 {
		amp = 0.35
	}
	v := amp * (1.3*math.Sin(0.41*min) + 0.9*math.Sin(0.113*min+0.7))
	return int(math.Round(v))
}

// memberNoise is a deterministic hash in {-1, 0, +1}.
func memberNoise(member int, t time.Duration) int {
	h := uint64(member)*1099511628211 + uint64(t/time.Minute)*14695981039346656037
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h%3) - 1
}

// ermiProvisionLatency models Fig. 8: container bring-up of a few seconds
// plus load-dependent overhead from computing redirections and the
// increasing demands on the sentinel, staying under 30 s (§5.6).
func ermiProvisionLatency(rate, peak float64, adds int) time.Duration {
	frac := 0.0
	if peak > 0 {
		frac = rate / peak
	}
	base := 4 * time.Second
	loadPart := time.Duration(21 * frac * float64(time.Second))
	batchPart := time.Duration(adds) * 500 * time.Millisecond
	lat := base + loadPart + batchPart
	if lat > 30*time.Second {
		lat = 30 * time.Second
	}
	return lat
}

// cloudWatchProvisionLatency is VM provisioning: several minutes (§5.6).
func cloudWatchProvisionLatency(rate, peak float64) time.Duration {
	frac := 0.0
	if peak > 0 {
		frac = rate / peak
	}
	return 4*time.Minute + time.Duration(3*frac*float64(time.Minute))
}

// step advances one simulation step and returns the capacity provisioned
// during the step plus any provisioning events initiated.
func (d *deploymentSim) step(t time.Duration, rate float64, req int) (int, []agility.ProvisioningEvent) {
	cfg := d.cfg
	switch cfg.Deploy {
	case DeployOverprovision:
		// All resources always provisioned; provisioning latency zero.
		return d.size, nil

	case DeployElasticRMI:
		lag := d.lagReq
		if lag == 0 {
			lag = req
		}
		d.lagReq = req
		pm := core.PoolMetrics{
			PoolSize:    d.size,
			MinPool:     2,
			MaxPool:     cfg.MaxPool,
			FineDeltas:  d.fineDeltas(lag, t),
			DesiredSize: -1,
		}
		delta := core.FinePolicy{}.Decide(pm)
		var events []agility.ProvisioningEvent
		if delta > 0 {
			lat := ermiProvisionLatency(rate, cfg.Pattern.Peak(), delta)
			events = append(events, agility.ProvisioningEvent{At: t, Latency: lat})
		}
		d.size += delta
		return d.size, events

	case DeployElasticRMICPUMem:
		// Same conditions and monitoring period as the CloudWatch
		// deployment (§5.4: "the same conditions are used to decide on
		// elastic scaling"): evaluate every thresholdPeriod.
		if int(t/cfg.Step)%cfg.ThresholdPeriodSteps != 0 {
			return d.size, nil
		}
		pm := core.PoolMetrics{
			AvgCPU:      d.avgCPU(rate),
			AvgRAM:      d.avgRAM(rate),
			PoolSize:    d.size,
			MinPool:     2,
			MaxPool:     cfg.MaxPool,
			DesiredSize: -1,
			// ElasticRMI members report shed work; CloudWatch below has no
			// such signal — VM rules see only utilization averages.
			Shed: d.shedCount(rate),
		}
		delta := core.CoarsePolicy{CPUIncr: 85, CPUDecr: 50, RAMIncr: 70, RAMDecr: 40}.Decide(pm)
		var events []agility.ProvisioningEvent
		if delta > 0 {
			lat := ermiProvisionLatency(rate, cfg.Pattern.Peak(), delta)
			events = append(events, agility.ProvisioningEvent{At: t, Latency: lat})
		}
		d.size += delta
		return d.size, events

	case DeployCloudWatch:
		// Apply VM additions that have finished provisioning.
		now := time.Time{}.Add(t)
		remaining := d.pendingAdds[:0]
		for _, p := range d.pendingAdds {
			if !p.ready.After(now) {
				d.size += p.n
			} else {
				remaining = append(remaining, p)
			}
		}
		d.pendingAdds = remaining

		if int(t/cfg.Step)%cfg.ThresholdPeriodSteps != 0 {
			return d.size, nil
		}
		inFlight := 0
		for _, p := range d.pendingAdds {
			inFlight += p.n
		}
		pm := core.PoolMetrics{
			AvgCPU:      d.avgCPU(rate),
			AvgRAM:      d.avgRAM(rate),
			PoolSize:    d.size + inFlight, // rules see requested capacity
			MinPool:     2,
			MaxPool:     cfg.MaxPool,
			DesiredSize: -1,
		}
		delta := core.CoarsePolicy{CPUIncr: 85, CPUDecr: 50, RAMIncr: 70, RAMDecr: 40}.Decide(pm)
		var events []agility.ProvisioningEvent
		if delta > 0 {
			lat := time.Duration(float64(cloudWatchProvisionLatency(rate, cfg.Pattern.Peak())) * cfg.CloudWatchLatencyScale)
			d.pendingAdds = append(d.pendingAdds, pendingAdd{ready: now.Add(lat), n: delta})
			events = append(events, agility.ProvisioningEvent{At: t, Latency: lat})
		} else if delta < 0 {
			d.size += delta // terminating instances is immediate
			if d.size < 2 {
				d.size = 2
			}
		}
		return d.size, events

	default:
		return d.size, nil
	}
}

// Experiment bundles the four deployments over one app/pattern pair — one
// sub-figure of Fig. 7.
type Experiment struct {
	App     AppModel
	Pattern workload.Pattern
	Results map[Deployment]Result
}

// RunExperiment runs all four deployments for an app and pattern.
func RunExperiment(app AppModel, p workload.Pattern) Experiment {
	e := Experiment{App: app, Pattern: p, Results: make(map[Deployment]Result, 4)}
	for _, dep := range Deployments() {
		e.Results[dep] = Run(RunConfig{App: app, Pattern: p, Deploy: dep})
	}
	return e
}

// RatioVsElasticRMI returns avg agility of dep divided by ElasticRMI's.
func (e Experiment) RatioVsElasticRMI(dep Deployment) float64 {
	base := e.Results[DeployElasticRMI].AvgAgility()
	if base == 0 {
		return math.Inf(1)
	}
	return e.Results[dep].AvgAgility() / base
}
