package benchsim

import (
	"testing"
	"testing/quick"
	"time"

	"elasticrmi/internal/workload"
)

// Property: for every deployment, app and workload scale, provisioned
// capacity stays within [2, MaxPool] for the entire run, and the simulator
// never panics on odd magnitudes.
func TestCapacityBoundsProperty(t *testing.T) {
	apps := Models()
	deps := Deployments()
	prop := func(appIdx, depIdx uint8, scalePct uint8, cyclic bool) bool {
		app := apps[int(appIdx)%len(apps)]
		dep := deps[int(depIdx)%len(deps)]
		scale := 0.2 + float64(scalePct%200)/100 // 0.2x..2.2x of Point A
		var p workload.Pattern
		if cyclic {
			p = workload.Cyclic(app.PeakB() * scale)
		} else {
			p = workload.Abrupt(app.PeakA * scale)
		}
		res := Run(RunConfig{App: app, Pattern: p, Deploy: dep, MaxPool: 80})
		for _, s := range res.Samples {
			if s.CapProv < 2 || s.CapProv > 80 {
				return false
			}
			if s.ReqMin < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SPEC agility of any run is non-negative and finite, and the
// plotted windows average to (approximately) the run average.
func TestPlotConsistencyProperty(t *testing.T) {
	apps := Models()
	prop := func(appIdx uint8, cyclic bool) bool {
		app := apps[int(appIdx)%len(apps)]
		var p workload.Pattern
		if cyclic {
			p = workload.Cyclic(app.PeakB())
		} else {
			p = workload.Abrupt(app.PeakA)
		}
		res := Run(RunConfig{App: app, Pattern: p, Deploy: DeployElasticRMI})
		avg := res.AvgAgility()
		if avg < 0 {
			return false
		}
		// Weighted mean of plotted windows == sample mean.
		var weighted float64
		per := 10.0
		n := float64(len(res.Samples))
		for i, pt := range res.Plotted {
			w := per
			if i == len(res.Plotted)-1 {
				w = n - per*float64(len(res.Plotted)-1)
			}
			weighted += pt.Agility * w
		}
		weighted /= n
		diff := weighted - avg
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReqMin is monotone in rate for non-erratic apps.
func TestReqMinMonotoneProperty(t *testing.T) {
	app := MarketceteraModel()
	prop := func(a, b uint16) bool {
		ra, rb := float64(a), float64(b)
		if ra > rb {
			ra, rb = rb, ra
		}
		return app.ReqMin(ra*10, time.Minute) <= app.ReqMin(rb*10, time.Minute)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
