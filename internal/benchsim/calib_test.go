package benchsim

import (
	"fmt"
	"testing"
	"time"

	"elasticrmi/internal/workload"
)

// TestCalibrationReport prints the summary numbers for manual calibration.
func TestCalibrationReport(t *testing.T) {
	for _, app := range Models() {
		for _, mk := range []struct {
			name string
			p    workload.Pattern
		}{
			{"abrupt", workload.Abrupt(app.PeakA)},
			{"cyclic", workload.Cyclic(app.PeakB())},
		} {
			e := RunExperiment(app, mk.p)
			ermi := e.Results[DeployElasticRMI]
			fmt.Printf("%-13s %-6s ERMI avg=%5.2f zero=%4.2f maxProv=%5.1fs | CW=%5.2f (%4.1fx) CPUMem=%5.2f (%4.1fx) Over=%5.2f (%4.1fx) peakReq=%d\n",
				app.Name, mk.name,
				ermi.AvgAgility(), ermi.ZeroFraction(),
				ermi.MaxProvisioningLatency().Seconds(),
				e.Results[DeployCloudWatch].AvgAgility(), e.RatioVsElasticRMI(DeployCloudWatch),
				e.Results[DeployElasticRMICPUMem].AvgAgility(), e.RatioVsElasticRMI(DeployElasticRMICPUMem),
				e.Results[DeployOverprovision].AvgAgility(), e.RatioVsElasticRMI(DeployOverprovision),
				peakReqOf(app, mk.p),
			)
			_ = time.Minute
		}
	}
}

func peakReqOf(app AppModel, p workload.Pattern) int {
	cfg := RunConfig{App: app, Pattern: p, Deploy: DeployOverprovision}
	cfg = cfg.withDefaults()
	return newDeploymentSim(cfg).peakReq
}
