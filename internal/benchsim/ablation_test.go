package benchsim

import (
	"testing"

	"elasticrmi/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out. Each test
// asserts the direction of the effect; the Ablation* benchmarks in
// bench_test.go report the magnitudes.

// Removing the common-mode estimation error makes ElasticRMI nearly ideal —
// the residual agility in the paper comes from imperfect application
// metrics, not from the mechanism.
func TestAblationCommonModeError(t *testing.T) {
	app := MarketceteraModel()
	base := Run(RunConfig{App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: DeployElasticRMI})
	ideal := Run(RunConfig{
		App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: DeployElasticRMI,
		DisableCommonModeError: true,
	})
	if ideal.AvgAgility() >= base.AvgAgility() {
		t.Fatalf("perfect observability agility %.2f >= noisy %.2f", ideal.AvgAgility(), base.AvgAgility())
	}
	if ideal.AvgAgility() > 0.5 {
		t.Fatalf("perfect observability agility %.2f, want near-ideal < 0.5", ideal.AvgAgility())
	}
}

// Bounding per-member ChangePoolSize returns slows reaction to abrupt
// jumps: a tighter cap gives strictly worse agility, an unbounded return
// strictly better.
func TestAblationFineDeltaCap(t *testing.T) {
	app := MarketceteraModel()
	run := func(cap int) float64 {
		return Run(RunConfig{
			App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: DeployElasticRMI,
			FineDeltaCap: cap,
		}).AvgAgility()
	}
	tight, paper, unbounded := run(1), run(2), run(-1)
	if !(unbounded < paper && paper < tight) {
		t.Fatalf("agility ordering wrong: cap1=%.2f cap2=%.2f unbounded=%.2f (want decreasing)",
			tight, paper, unbounded)
	}
}

// A longer CloudWatch monitoring period worsens its agility.
func TestAblationThresholdPeriod(t *testing.T) {
	app := DCSModel()
	run := func(period int) float64 {
		return Run(RunConfig{
			App: app, Pattern: workload.Cyclic(app.PeakB()), Deploy: DeployCloudWatch,
			ThresholdPeriodSteps: period,
		}).AvgAgility()
	}
	fast, paper, slow := run(1), run(5), run(10)
	if !(fast < paper && paper < slow) {
		t.Fatalf("agility ordering wrong: 1m=%.2f 5m=%.2f 10m=%.2f (want increasing)", fast, paper, slow)
	}
}

// Longer VM provisioning hurts CloudWatch agility on abrupt workloads.
func TestAblationCloudWatchLatency(t *testing.T) {
	app := MarketceteraModel()
	run := func(scale float64) float64 {
		return Run(RunConfig{
			App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: DeployCloudWatch,
			CloudWatchLatencyScale: scale,
		}).AvgAgility()
	}
	container, vm, slowVM := run(0.01), run(1), run(3)
	if !(container <= vm && vm < slowVM) {
		t.Fatalf("agility ordering wrong: 0.01x=%.2f 1x=%.2f 3x=%.2f (want non-decreasing)",
			container, vm, slowVM)
	}
}
