package benchsim

import (
	"testing"
	"time"

	"elasticrmi/internal/workload"
)

// experiments enumerates the eight app/pattern pairs of Fig. 7.
func experiments() []struct {
	app AppModel
	p   workload.Pattern
} {
	var out []struct {
		app AppModel
		p   workload.Pattern
	}
	for _, app := range Models() {
		out = append(out,
			struct {
				app AppModel
				p   workload.Pattern
			}{app, workload.Abrupt(app.PeakA)},
			struct {
				app AppModel
				p   workload.Pattern
			}{app, workload.Cyclic(app.PeakB())},
		)
	}
	return out
}

// TestElasticRMIHasLowestAgility asserts the headline result of Figures
// 7c-7j: the agility of ElasticRMI is better (lower) than CloudWatch,
// ElasticRMI-CPUMem and Overprovisioning for every application and both
// workloads.
func TestElasticRMIHasLowestAgility(t *testing.T) {
	for _, e := range experiments() {
		ex := RunExperiment(e.app, e.p)
		ermi := ex.Results[DeployElasticRMI].AvgAgility()
		for _, dep := range []Deployment{DeployCloudWatch, DeployElasticRMICPUMem, DeployOverprovision} {
			if other := ex.Results[dep].AvgAgility(); other <= ermi {
				t.Errorf("%s/%s: %s agility %.2f <= ElasticRMI %.2f",
					e.app.Name, e.p.Name(), dep, other, ermi)
			}
		}
	}
}

// TestOverprovisioningWorstOnAverage: overprovisioning optimizes for the
// peak; on average its agility is the worst of the four deployments.
func TestOverprovisioningWorstOnAverage(t *testing.T) {
	for _, e := range experiments() {
		ex := RunExperiment(e.app, e.p)
		over := ex.Results[DeployOverprovision].AvgAgility()
		for _, dep := range []Deployment{DeployElasticRMI, DeployCloudWatch, DeployElasticRMICPUMem} {
			if other := ex.Results[dep].AvgAgility(); other >= over {
				t.Errorf("%s/%s: %s agility %.2f >= overprovisioning %.2f",
					e.app.Name, e.p.Name(), dep, other, over)
			}
		}
	}
}

// TestOverprovisioningZeroOnlyAtPeak: its agility reaches zero exactly when
// the workload requirement touches the peak (§5.5: "its agility does reach
// zero at peak workload").
func TestOverprovisioningZeroOnlyAtPeak(t *testing.T) {
	app := MarketceteraModel()
	res := Run(RunConfig{App: app, Pattern: workload.Cyclic(app.PeakB()), Deploy: DeployOverprovision})
	sawZero := false
	for _, s := range res.Samples {
		if s.Value() == 0 {
			sawZero = true
			if s.Excess() != 0 {
				t.Fatalf("zero agility with excess at %v", s.At)
			}
		}
	}
	if !sawZero {
		t.Fatal("overprovisioning never reached zero agility (should at Point B)")
	}
	if zf := res.ZeroFraction(); zf > 0.2 {
		t.Fatalf("overprovisioning at zero %f of the time — should only touch zero at peaks", zf)
	}
}

// TestElasticRMIOscillatesToZero: "the agility of ElasticRMI oscillates
// between 0 and a positive value frequently" and returns to zero most often
// among the deployments.
func TestElasticRMIOscillatesToZero(t *testing.T) {
	for _, e := range experiments() {
		ex := RunExperiment(e.app, e.p)
		ermiZero := ex.Results[DeployElasticRMI].ZeroFraction()
		if ermiZero < 0.2 {
			t.Errorf("%s/%s: ElasticRMI zero fraction %.2f, want >= 0.2", e.app.Name, e.p.Name(), ermiZero)
		}
		for _, dep := range []Deployment{DeployCloudWatch, DeployElasticRMICPUMem, DeployOverprovision} {
			if z := ex.Results[dep].ZeroFraction(); z >= ermiZero {
				t.Errorf("%s/%s: %s returns to zero more often (%.2f) than ElasticRMI (%.2f)",
					e.app.Name, e.p.Name(), dep, z, ermiZero)
			}
		}
	}
}

// TestCloudWatchRatioBand: the paper reports CloudWatch agility at 2.2x-7.2x
// ElasticRMI's across the four applications; allow a generous band around
// that (the claim is the factor's order of magnitude, not its digits).
func TestCloudWatchRatioBand(t *testing.T) {
	for _, e := range experiments() {
		ex := RunExperiment(e.app, e.p)
		ratio := ex.RatioVsElasticRMI(DeployCloudWatch)
		if ratio < 2 || ratio > 15 {
			t.Errorf("%s/%s: CloudWatch/ElasticRMI ratio %.1fx outside [2, 15]",
				e.app.Name, e.p.Name(), ratio)
		}
	}
}

// TestCPUMemApproxCloudWatch: "the agility of ElasticRMI-CPUMem is
// approximately equal to CloudWatch" (§5.5) — same conditions, provisioning
// latency within the sampling interval.
func TestCPUMemApproxCloudWatch(t *testing.T) {
	for _, e := range experiments() {
		ex := RunExperiment(e.app, e.p)
		cw := ex.Results[DeployCloudWatch].AvgAgility()
		cpumem := ex.Results[DeployElasticRMICPUMem].AvgAgility()
		if cpumem < 0.5*cw || cpumem > 1.2*cw {
			t.Errorf("%s/%s: CPUMem %.2f vs CloudWatch %.2f — not approximately equal",
				e.app.Name, e.p.Name(), cpumem, cw)
		}
	}
}

// TestMarketceteraSummaryNumbers checks the §5.5 headline magnitudes for
// Marketcetera: ElasticRMI average agility ~1.37 (we accept [0.5, 2.5]);
// overprovisioning average ~24.1 abrupt / ~17.2 cyclic (accept +/-50%).
func TestMarketceteraSummaryNumbers(t *testing.T) {
	app := MarketceteraModel()
	abrupt := RunExperiment(app, workload.Abrupt(app.PeakA))
	ermi := abrupt.Results[DeployElasticRMI].AvgAgility()
	if ermi < 0.5 || ermi > 2.5 {
		t.Errorf("ElasticRMI abrupt avg agility %.2f outside [0.5, 2.5] (paper: 1.37)", ermi)
	}
	over := abrupt.Results[DeployOverprovision].AvgAgility()
	if over < 12 || over > 36 {
		t.Errorf("overprovision abrupt avg agility %.2f outside [12, 36] (paper: 24.1)", over)
	}
	cyclic := RunExperiment(app, workload.Cyclic(app.PeakB()))
	overC := cyclic.Results[DeployOverprovision].AvgAgility()
	if overC < 8.5 || overC > 26 {
		t.Errorf("overprovision cyclic avg agility %.2f outside [8.5, 26] (paper: 17.2)", overC)
	}
	if overC >= over {
		t.Errorf("cyclic overprovision agility %.2f should be below abrupt %.2f (paper: 17.2 < 24.1)", overC, over)
	}
}

// TestProvisioningLatencyShape reproduces Fig. 8: ElasticRMI provisioning
// latency stays under 30 s, grows with workload, and CloudWatch's is in
// minutes; overprovisioning performs no provisioning at all.
func TestProvisioningLatencyShape(t *testing.T) {
	for _, e := range experiments() {
		ermi := Run(RunConfig{App: e.app, Pattern: e.p, Deploy: DeployElasticRMI})
		if len(ermi.Provisioning) == 0 {
			t.Errorf("%s/%s: ElasticRMI never provisioned", e.app.Name, e.p.Name())
			continue
		}
		if max := ermi.MaxProvisioningLatency(); max > 30*time.Second {
			t.Errorf("%s/%s: ElasticRMI max provisioning %v > 30s", e.app.Name, e.p.Name(), max)
		}
		// Latency grows with workload: the event at the highest rate beats
		// the one at the lowest.
		var lowLat, highLat time.Duration
		lowRate, highRate := 1e18, -1.0
		for _, ev := range ermi.Provisioning {
			r := e.p.Rate(ev.At)
			if r < lowRate {
				lowRate, lowLat = r, ev.Latency
			}
			if r > highRate {
				highRate, highLat = r, ev.Latency
			}
		}
		if highLat <= lowLat {
			t.Errorf("%s/%s: provisioning latency does not grow with workload (%v at low vs %v at high)",
				e.app.Name, e.p.Name(), lowLat, highLat)
		}

		cw := Run(RunConfig{App: e.app, Pattern: e.p, Deploy: DeployCloudWatch})
		for _, ev := range cw.Provisioning {
			if ev.Latency < time.Minute {
				t.Errorf("%s/%s: CloudWatch provisioning %v < 1 minute", e.app.Name, e.p.Name(), ev.Latency)
			}
		}
		over := Run(RunConfig{App: e.app, Pattern: e.p, Deploy: DeployOverprovision})
		if len(over.Provisioning) != 0 {
			t.Errorf("%s/%s: overprovisioning provisioned at runtime", e.app.Name, e.p.Name())
		}
	}
}

// TestHedwigErraticRequirement: Hedwig's ReqMin wobbles (replication and
// at-most-once bookkeeping), Marketcetera's does not (§5.5).
func TestHedwigErraticRequirement(t *testing.T) {
	hw, mc := HedwigModel(), MarketceteraModel()
	flips := func(m AppModel, rate float64) int {
		n := 0
		prev := m.ReqMin(rate, 0)
		for min := 1; min <= 100; min++ {
			cur := m.ReqMin(rate, time.Duration(min)*time.Minute)
			if cur != prev {
				n++
			}
			prev = cur
		}
		return n
	}
	hwFlips := flips(hw, 0.7*hw.PeakA)
	mcFlips := flips(mc, 0.7*mc.PeakA)
	if hwFlips <= mcFlips {
		t.Fatalf("Hedwig ReqMin flips %d <= Marketcetera %d; want erratic Hedwig", hwFlips, mcFlips)
	}
}

// TestRunDeterministic: same configuration, same series — the simulator has
// no hidden randomness.
func TestRunDeterministic(t *testing.T) {
	app := PaxosModel()
	cfg := RunConfig{App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: DeployElasticRMI}
	a, b := Run(cfg), Run(cfg)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("sample count differs")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// TestPlotWindowsAverageSubIntervals: each plotted point is the mean of its
// window's per-minute values (the SPEC definition with N sub-intervals).
func TestPlotWindowsAverageSubIntervals(t *testing.T) {
	app := DCSModel()
	res := Run(RunConfig{App: app, Pattern: workload.Abrupt(app.PeakA), Deploy: DeployCloudWatch})
	if len(res.Plotted) == 0 {
		t.Fatal("no plotted points")
	}
	// Recompute the first full window by hand.
	per := 10
	sum := 0
	for _, s := range res.Samples[:per] {
		sum += s.Value()
	}
	want := float64(sum) / float64(per)
	if got := res.Plotted[0].Agility; got != want {
		t.Fatalf("plotted[0] = %v, want %v", got, want)
	}
}

func TestMinimumPoolOfTwo(t *testing.T) {
	app := PaxosModel()
	for _, dep := range Deployments() {
		res := Run(RunConfig{App: app, Pattern: workload.Cyclic(app.PeakB()), Deploy: dep})
		for _, s := range res.Samples {
			if s.CapProv < 2 {
				t.Fatalf("%s: capacity %d < 2 at %v (elastic pools have >= 2 members)", dep, s.CapProv, s.At)
			}
		}
	}
}
