// Package workload implements the evaluation workload patterns of the paper
// (§5.3, Figures 7a and 7b) and an open-loop generator that replays them
// against a live elastic object pool.
//
// The abrupt pattern contains every abrupt-change scenario the paper
// enumerates: gradual non-cyclic increase, gradual decrease, rapid increase
// and rapid decrease. The cyclic pattern repeats three rise-and-fall cycles.
// The shape is shared by all four evaluation systems; only the magnitude
// (Point A / Point B) differs per benchmark.
package workload

import (
	"context"
	"math"
	"sort"
	"time"
)

// Pattern is a deterministic workload intensity curve.
type Pattern interface {
	// Rate returns the offered load (requests/second) at offset t.
	Rate(t time.Duration) float64
	// Duration is the length of the measurement period.
	Duration() time.Duration
	// Peak is the maximum offered load over the period (Point A or B).
	Peak() float64
	// Name identifies the pattern ("abrupt" or "cyclic").
	Name() string
}

// breakpoint anchors a piecewise-linear curve: at minute Min the load is
// Frac x peak.
type breakpoint struct {
	Min  float64
	Frac float64
}

type piecewise struct {
	name   string
	peak   float64
	length time.Duration
	points []breakpoint
}

var _ Pattern = (*piecewise)(nil)

func (p *piecewise) Name() string            { return p.name }
func (p *piecewise) Peak() float64           { return p.peak }
func (p *piecewise) Duration() time.Duration { return p.length }

func (p *piecewise) Rate(t time.Duration) float64 {
	min := t.Minutes()
	if min <= p.points[0].Min {
		return p.points[0].Frac * p.peak
	}
	last := p.points[len(p.points)-1]
	if min >= last.Min {
		return last.Frac * p.peak
	}
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].Min >= min })
	a, b := p.points[i-1], p.points[i]
	frac := a.Frac + (b.Frac-a.Frac)*(min-a.Min)/(b.Min-a.Min)
	return frac * p.peak
}

// Abrupt returns the abruptly changing workload of Fig. 7a, a 450-minute
// pattern peaking at Point A (peak requests/second). It exercises gradual
// non-cyclic increase, a sustained peak, rapid decrease, gradual decrease
// and a final rapid spike — all common elastic-scaling scenarios observed in
// real applications (§5.3).
func Abrupt(peakA float64) Pattern {
	return &piecewise{
		name:   "abrupt",
		peak:   peakA,
		length: 450 * time.Minute,
		points: []breakpoint{
			{0, 0.10},
			{40, 0.12},  // quiet start
			{120, 0.55}, // gradual non-cyclic increase
			{130, 1.00}, // abrupt increase to Point A
			{180, 1.00}, // sustained peak
			{190, 0.35}, // abrupt decrease
			{260, 0.30}, // plateau
			{320, 0.15}, // gradual decrease
			{330, 0.80}, // rapid increase (flash load)
			{360, 0.75}, // short shoulder
			{370, 0.20}, // rapid decrease
			{450, 0.10}, // tail
		},
	}
}

type cyclic struct {
	peak   float64
	length time.Duration
	cycles float64
	floor  float64
}

var _ Pattern = (*cyclic)(nil)

// Cyclic returns the cyclical workload of Fig. 7b: a 500-minute pattern
// with three full rise-and-fall cycles peaking at Point B.
func Cyclic(peakB float64) Pattern {
	return &cyclic{peak: peakB, length: 500 * time.Minute, cycles: 3, floor: 0.12}
}

func (c *cyclic) Name() string            { return "cyclic" }
func (c *cyclic) Peak() float64           { return c.peak }
func (c *cyclic) Duration() time.Duration { return c.length }

func (c *cyclic) Rate(t time.Duration) float64 {
	if t < 0 {
		t = 0
	}
	if t > c.length {
		t = c.length
	}
	phase := 2 * math.Pi * c.cycles * t.Minutes() / c.length.Minutes()
	// Raised cosine: starts at the floor, peaks at c.peak mid-cycle.
	frac := c.floor + (1-c.floor)*0.5*(1-math.Cos(phase))
	return frac * c.peak
}

// Constant returns a flat pattern, useful for microbenchmarks.
func Constant(rate float64, d time.Duration) Pattern {
	return &piecewise{
		name:   "constant",
		peak:   rate,
		length: d,
		points: []breakpoint{{0, 1}, {d.Minutes(), 1}},
	}
}

// Sample evaluates the pattern every step and returns the rate series —
// exactly the curves plotted in Figures 7a/7b.
func Sample(p Pattern, step time.Duration) []float64 {
	n := int(p.Duration()/step) + 1
	out := make([]float64, 0, n)
	for t := time.Duration(0); t <= p.Duration(); t += step {
		out = append(out, p.Rate(t))
	}
	return out
}

// Generator replays a Pattern against a live target, compressed in time and
// scaled in rate so a 450-minute cluster experiment becomes a sub-second
// in-process one.
type Generator struct {
	// Pattern is the workload shape to replay.
	Pattern Pattern
	// Speedup divides time: pattern minute -> wall millisecond at 60000.
	Speedup float64
	// RateScale multiplies the pattern's rate (e.g. 1/1000 to turn 50 000
	// orders/s into 50 calls/s).
	RateScale float64
	// MaxInFlight bounds concurrency (0 = 64).
	MaxInFlight int
}

// Run replays the pattern, invoking fn for every generated request. It
// returns the number of requests issued. fn errors are counted, not fatal.
func (g *Generator) Run(ctx context.Context, fn func() error) (issued, failed int64) {
	speedup := g.Speedup
	if speedup <= 0 {
		speedup = 1
	}
	scale := g.RateScale
	if scale <= 0 {
		scale = 1
	}
	maxInFlight := g.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 64
	}
	sem := make(chan struct{}, maxInFlight)
	results := make(chan error, maxInFlight)
	var outstanding int

	start := time.Now()
	last := start
	var carry float64
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			for outstanding > 0 {
				if err := <-results; err != nil {
					failed++
				}
				outstanding--
			}
			return issued, failed
		case err := <-results:
			if err != nil {
				failed++
			}
			outstanding--
			continue
		case <-tick.C:
		}
		now := time.Now()
		elapsed := now.Sub(start)
		virtual := time.Duration(float64(elapsed) * speedup)
		if virtual > g.Pattern.Duration() {
			for outstanding > 0 {
				if err := <-results; err != nil {
					failed++
				}
				outstanding--
			}
			return issued, failed
		}
		// Requests owed since the last tick at the (scaled) current rate —
		// measured wall time, not the nominal tick period, because tickers
		// coalesce under load.
		carry += g.Pattern.Rate(virtual) * scale * now.Sub(last).Seconds()
		last = now
		for carry >= 1 {
			carry--
			select {
			case sem <- struct{}{}:
			default:
				continue // at concurrency limit: shed load
			}
			issued++
			outstanding++
			go func() {
				err := fn()
				<-sem
				results <- err
			}()
		}
	}
}
