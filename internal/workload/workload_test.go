package workload

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestAbruptShape(t *testing.T) {
	p := Abrupt(50000)
	if p.Name() != "abrupt" {
		t.Fatalf("name = %s", p.Name())
	}
	if p.Duration() != 450*time.Minute {
		t.Fatalf("duration = %v", p.Duration())
	}
	// Starts low.
	if r := p.Rate(0); r > 0.2*p.Peak() {
		t.Fatalf("rate(0) = %v, want low start", r)
	}
	// Reaches the peak (Point A) during the sustained plateau.
	if r := p.Rate(150 * time.Minute); r != p.Peak() {
		t.Fatalf("rate(150m) = %v, want peak %v", r, p.Peak())
	}
	// Abrupt increase: large jump within 10 minutes.
	before, after := p.Rate(120*time.Minute), p.Rate(130*time.Minute)
	if after-before < 0.3*p.Peak() {
		t.Fatalf("abrupt increase only %v", after-before)
	}
	// Abrupt decrease after the plateau.
	before, after = p.Rate(180*time.Minute), p.Rate(190*time.Minute)
	if before-after < 0.3*p.Peak() {
		t.Fatalf("abrupt decrease only %v", before-after)
	}
	// Flash spike later in the run (rapid increase then rapid decrease).
	if r := p.Rate(330 * time.Minute); r < 0.7*p.Peak() {
		t.Fatalf("flash spike rate = %v", r)
	}
	if r := p.Rate(380 * time.Minute); r > 0.3*p.Peak() {
		t.Fatalf("post-spike rate = %v", r)
	}
	// Ends low.
	if r := p.Rate(450 * time.Minute); r > 0.2*p.Peak() {
		t.Fatalf("rate(end) = %v", r)
	}
}

func TestCyclicShape(t *testing.T) {
	p := Cyclic(36000)
	if p.Duration() != 500*time.Minute {
		t.Fatalf("duration = %v", p.Duration())
	}
	// Three peaks, each reaching Point B.
	peaks := []time.Duration{
		500 * time.Minute / 6,     // first mid-cycle
		500 * time.Minute / 2,     // second
		5 * 500 * time.Minute / 6, // third
	}
	for _, at := range peaks {
		if r := p.Rate(at); r < 0.99*p.Peak() {
			t.Fatalf("rate(%v) = %v, want ~peak %v", at, r, p.Peak())
		}
	}
	// Troughs return near the floor.
	troughs := []time.Duration{0, 500 * time.Minute / 3, 2 * 500 * time.Minute / 3}
	for _, at := range troughs {
		if r := p.Rate(at); r > 0.2*p.Peak() {
			t.Fatalf("trough rate(%v) = %v", at, r)
		}
	}
}

// Property: both patterns stay within (0, peak] everywhere.
func TestPatternsBoundedProperty(t *testing.T) {
	patterns := []Pattern{Abrupt(1000), Cyclic(1000)}
	prop := func(minute uint16) bool {
		at := time.Duration(minute%520) * time.Minute
		for _, p := range patterns {
			r := p.Rate(at)
			if r <= 0 || r > p.Peak()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: piecewise-linear interpolation is monotone between breakpoints —
// rates at t and t+epsilon never jump more than the segment slope allows.
func TestAbruptContinuityProperty(t *testing.T) {
	p := Abrupt(1000)
	prop := func(minute uint16) bool {
		at := time.Duration(minute%449) * time.Minute
		r1 := p.Rate(at)
		r2 := p.Rate(at + 30*time.Second)
		// Steepest segment spans 10 minutes over 0.65 of peak.
		maxSlopePerHalfMinute := 0.65 * 1000 / 20
		diff := r2 - r1
		if diff < 0 {
			diff = -diff
		}
		return diff <= maxSlopePerHalfMinute+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantPattern(t *testing.T) {
	p := Constant(100, 10*time.Minute)
	for _, at := range []time.Duration{0, 5 * time.Minute, 10 * time.Minute} {
		if r := p.Rate(at); r != 100 {
			t.Fatalf("rate(%v) = %v, want 100", at, r)
		}
	}
}

func TestSample(t *testing.T) {
	p := Constant(42, 10*time.Minute)
	s := Sample(p, time.Minute)
	if len(s) != 11 {
		t.Fatalf("samples = %d, want 11", len(s))
	}
	for _, v := range s {
		if v != 42 {
			t.Fatalf("sample = %v", v)
		}
	}
}

func TestGeneratorIssuesApproximateRate(t *testing.T) {
	// 100 req/s for a 600ms run -> ~60 requests.
	g := &Generator{
		Pattern:   Constant(100, time.Minute),
		Speedup:   1,
		RateScale: 1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	var calls atomic.Int64
	issued, failed := g.Run(ctx, func() error {
		calls.Add(1)
		return nil
	})
	if failed != 0 {
		t.Fatalf("failed = %d", failed)
	}
	if issued < 30 || issued > 90 {
		t.Fatalf("issued = %d, want ~60", issued)
	}
	if calls.Load() != issued {
		t.Fatalf("calls = %d, issued = %d", calls.Load(), issued)
	}
}

func TestGeneratorStopsAtPatternEnd(t *testing.T) {
	// 50ms virtual duration at speedup 1: ends on its own.
	g := &Generator{
		Pattern:   Constant(200, 50*time.Millisecond),
		Speedup:   1,
		RateScale: 1,
	}
	start := time.Now()
	issued, _ := g.Run(context.Background(), func() error { return nil })
	if time.Since(start) > 2*time.Second {
		t.Fatal("generator did not stop at pattern end")
	}
	if issued == 0 {
		t.Fatal("generator issued nothing")
	}
}

func TestGeneratorCountsFailures(t *testing.T) {
	g := &Generator{Pattern: Constant(100, 100*time.Millisecond), Speedup: 1, RateScale: 1}
	var n atomic.Int64
	_, failed := g.Run(context.Background(), func() error {
		if n.Add(1)%2 == 0 {
			return context.Canceled
		}
		return nil
	})
	if failed == 0 {
		t.Fatal("failures not counted")
	}
}
