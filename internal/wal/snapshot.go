package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files (`snap-<lsn>.snap`) hold one opaque payload — the state
// image as of log position lsn — framed as:
//
//	8-byte magic | 8-byte LE lsn | 4-byte LE CRC32-C(payload) | payload
//
// A snapshot is written to a temp file, fsynced, and renamed into place,
// so a crash mid-write leaves either the old snapshot or the new one,
// never a torn file that parses. Only the newest snapshot is kept.

const snapMagic = "eWALSNP1"

func snapPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

func parseSnapName(path string) (uint64, bool) {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "snap-") || !strings.HasSuffix(base, ".snap") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(base, "snap-"), ".snap")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// SaveSnapshot atomically persists payload as the snapshot at log
// position lsn and removes older snapshot files.
func SaveSnapshot(dir string, lsn uint64, payload []byte) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var hdr [20]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(payload, crcTable))
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	final := snapPath(dir, lsn)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(dir)
	// Older snapshots are now redundant; best-effort cleanup.
	if names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap")); err == nil {
		for _, name := range names {
			if name != final {
				os.Remove(name)
			}
		}
	}
	return nil
}

// LoadSnapshot reads the newest valid snapshot in dir. ok=false with a nil
// error means no snapshot exists (a fresh store); snapshots present but
// all corrupt is an error — the caller must not silently boot empty over
// state that provably existed.
func LoadSnapshot(dir string) (lsn uint64, payload []byte, ok bool, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return 0, nil, false, fmt.Errorf("wal: %w", err)
	}
	type cand struct {
		path string
		lsn  uint64
	}
	var cands []cand
	for _, name := range names {
		if n, okName := parseSnapName(name); okName {
			cands = append(cands, cand{name, n})
		}
	}
	if len(cands) == 0 {
		return 0, nil, false, nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands {
		data, rerr := os.ReadFile(c.path)
		if rerr != nil || len(data) < 20 || string(data[:8]) != snapMagic {
			continue
		}
		gotLSN := binary.LittleEndian.Uint64(data[8:16])
		want := binary.LittleEndian.Uint32(data[16:20])
		body := data[20:]
		if gotLSN != c.lsn || crc32.Checksum(body, crcTable) != want {
			continue
		}
		return c.lsn, body, true, nil
	}
	return 0, nil, false, fmt.Errorf("wal: %d snapshot file(s) in %s, none valid", len(cands), dir)
}
