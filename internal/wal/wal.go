// Package wal is the durability kernel under the kvstore: an append-only
// segmented log plus atomically renamed snapshot files, in the
// log-and-snapshot idiom of raft-boltdb/pebble-style stores.
//
// The log is a sequence of segment files (`wal-<firstLSN>.seg`), each a
// fixed magic header followed by CRC-framed records: a 4-byte little-endian
// payload length, a 4-byte CRC32-C of the payload, then the payload. Every
// appended record gets a log sequence number (LSN), monotonically
// increasing from 1 across segments; a segment's file name carries the LSN
// of its first record, so compaction can drop whole files once a snapshot
// covers them.
//
// Durability is decoupled from appending: Append buffers the record and
// returns its LSN; Commit(lsn) returns once every record up to lsn is
// fsynced. With Options.GroupCommit one committer becomes the leader and
// fsyncs the whole buffered batch while later committers wait, so one
// fsync is amortized across every record appended by concurrently admitted
// writes; without it each Commit pays its own flush+fsync (the naive
// write-ahead baseline the benchmarks compare against).
//
// Recovery (Open) is total on hostile input: segments are scanned in LSN
// order, the first torn or corrupt record truncates the log at the last
// intact record, and everything past the corruption point — including later
// segment files, which are unreachable once the sequence is broken — is
// discarded. Unparsable or non-contiguous segment files are treated the
// same way. Open never panics on garbage; it recovers the longest clean
// prefix and continues appending after it.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrClosed is returned by operations on a closed (or crashed) log.
var ErrClosed = errors.New("wal: log closed")

const (
	segMagic   = "eWALSEG1"
	recHdrSize = 8 // 4-byte LE payload length + 4-byte LE CRC32-C

	// MaxRecord bounds one record's payload. A scanned header declaring
	// more is corruption, so hostile input can never drive an allocation
	// beyond this.
	MaxRecord = 16 << 20

	defaultSegmentSize = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// SegmentSize is the byte size at which the active segment rolls over
	// (default 4 MiB). A record larger than the segment size still fits:
	// it gets a segment of its own.
	SegmentSize int
	// GroupCommit amortizes one fsync across concurrently committing
	// appenders. Without it every Commit pays its own flush+fsync.
	GroupCommit bool
}

type segment struct {
	path  string
	first uint64 // LSN of the first record in this segment
}

// Log is an append-only segmented record log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     []segment // in LSN order; the last one is active
	f        *os.File  // active segment
	w        *bufio.Writer
	size     int64  // valid bytes in the active segment
	lsn      uint64 // last appended LSN (0 = empty log)
	synced   uint64 // last LSN known durable
	syncing  bool   // a group-commit leader's fsync is in flight
	syncErr  error  // sticky: first flush/fsync failure poisons the log
	syncDone chan struct{}
	closed   bool
}

// Open opens (creating or recovering) the log in dir. Recovery truncates
// the log at the first torn or corrupt record and discards unreachable
// later segments; it never fails on garbage content, only on I/O errors.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, syncDone: make(chan struct{})}
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", first))
}

// parseSegName extracts the first-LSN from a segment file name.
func parseSegName(path string) (uint64, bool) {
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "wal-") || !strings.HasSuffix(base, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(base, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// recover scans the directory, validates the segment chain, truncates at
// the first corruption, and opens the active segment for appending.
func (l *Log) recover() error {
	names, err := filepath.Glob(filepath.Join(l.dir, "wal-*.seg"))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var found []segment
	for _, name := range names {
		first, ok := parseSegName(name)
		if !ok {
			// A file matching the pattern but with an unparsable LSN is
			// garbage; recovery removes it so it cannot shadow a real
			// segment later.
			os.Remove(name)
			continue
		}
		found = append(found, segment{path: name, first: first})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].first < found[j].first })

	var kept []segment
	var lsn uint64
	stop := -1 // index of first unusable segment (everything after is dropped)
	for i, seg := range found {
		if i == 0 {
			lsn = seg.first - 1
		}
		if seg.first != lsn+1 {
			stop = i // gap or overlap: the chain is broken here
			break
		}
		records, validEnd, intact, serr := scanSegment(seg.path)
		if serr != nil {
			return serr
		}
		if validEnd < int64(len(segMagic)) {
			// The magic itself is torn or wrong: rewrite the file as an
			// empty segment so later appends land after a real header.
			if err := os.WriteFile(seg.path, []byte(segMagic), 0o644); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			validEnd = int64(len(segMagic))
		} else if err := truncateFile(seg.path, validEnd); err != nil {
			return err
		}
		kept = append(kept, seg)
		lsn += records
		if !intact {
			stop = i + 1 // corruption truncated this segment: later ones are unreachable
			break
		}
	}
	if stop >= 0 {
		for _, seg := range found[stop:] {
			os.Remove(seg.path)
		}
	}
	l.segs = kept
	l.lsn = lsn
	l.synced = lsn
	if len(l.segs) == 0 {
		return l.createSegmentLocked(1)
	}
	// Reopen the active (last) segment for appending at its valid end.
	active := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(active.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = end
	return nil
}

// scanSegment reads one segment, returning the number of intact records,
// the byte offset of the end of the last intact record (the truncation
// point), and whether the whole file was intact. Total on hostile input.
func scanSegment(path string) (records uint64, validEnd int64, intact bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return 0, 0, false, nil // header torn or wrong: the file holds nothing usable
	}
	validEnd = int64(len(segMagic))
	var hdr [recHdrSize]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return records, validEnd, err == io.EOF, nil // clean EOF = intact; torn header = not
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > MaxRecord {
			return records, validEnd, false, nil
		}
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		buf = buf[:plen]
		if _, err := io.ReadFull(r, buf); err != nil {
			return records, validEnd, false, nil // torn record
		}
		if crc32.Checksum(buf, crcTable) != want {
			return records, validEnd, false, nil // bit rot
		}
		records++
		validEnd += int64(recHdrSize) + int64(plen)
	}
}

func truncateFile(path string, size int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if info.Size() == size {
		return nil
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// createSegmentLocked starts a fresh segment whose first record will be
// LSN first, and makes it the active one.
func (l *Log) createSegmentLocked(first uint64) error {
	path := segPath(l.dir, first)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.segs = append(l.segs, segment{path: path, first: first})
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = int64(len(segMagic))
	syncDir(l.dir)
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Best-effort: not every filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		//ermi:ignore errdrop deliberate best-effort: directory fsync is unsupported on some filesystems, and the record/segment fsyncs are the durability points
		d.Sync()
		d.Close()
	}
}

// Append buffers one record and returns its LSN. The record is not durable
// until Commit(lsn) (or a later Commit) returns.
func (l *Log) Append(rec []byte) (uint64, error) {
	if len(rec) == 0 || len(rec) > MaxRecord {
		return 0, fmt.Errorf("wal: record size %d out of range [1, %d]", len(rec), MaxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.syncErr != nil {
		return 0, l.syncErr
	}
	if l.size+int64(recHdrSize+len(rec)) > int64(l.opts.SegmentSize) && l.size > int64(len(segMagic)) {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.syncErr = err
		return 0, err
	}
	if _, err := l.w.Write(rec); err != nil {
		l.syncErr = err
		return 0, err
	}
	l.size += int64(recHdrSize + len(rec))
	l.lsn++
	return l.lsn, nil
}

// rollLocked seals the active segment (flushed and fsynced, so everything
// appended so far is durable) and starts the next one. It waits out an
// in-flight group-commit fsync first, so the leader never syncs a file
// descriptor the roll has closed.
func (l *Log) rollLocked() error {
	for l.syncing {
		ch := l.syncDone
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
		if l.closed {
			return ErrClosed
		}
	}
	if err := l.w.Flush(); err != nil {
		l.syncErr = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	if err := l.f.Close(); err != nil {
		l.syncErr = err
		return err
	}
	if l.lsn > l.synced {
		l.synced = l.lsn
	}
	return l.createSegmentLocked(l.lsn + 1)
}

// Commit blocks until every record up to lsn is durable (fsynced). Under
// GroupCommit, one caller becomes the leader and fsyncs the whole buffered
// batch; callers whose records that batch covers return without issuing
// their own fsync. Without GroupCommit each call pays flush+fsync itself.
func (l *Log) Commit(lsn uint64) error {
	l.mu.Lock()
	if !l.opts.GroupCommit {
		defer l.mu.Unlock()
		if l.closed {
			return ErrClosed
		}
		if l.syncErr != nil {
			return l.syncErr
		}
		if err := l.w.Flush(); err != nil {
			l.syncErr = err
			return err
		}
		if err := l.f.Sync(); err != nil {
			l.syncErr = err
			return err
		}
		if l.lsn > l.synced {
			l.synced = l.lsn
		}
		return nil
	}
	for {
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		if l.syncErr != nil {
			err := l.syncErr
			l.mu.Unlock()
			return err
		}
		if l.synced >= lsn {
			l.mu.Unlock()
			return nil
		}
		if !l.syncing {
			// Become the leader: flush under the lock (cheap — a memory
			// copy into the page cache), fsync outside it so appenders
			// keep filling the next batch while the disk works.
			l.syncing = true
			target := l.lsn
			if err := l.w.Flush(); err != nil {
				l.syncErr = err
				l.finishSyncLocked()
				l.mu.Unlock()
				return err
			}
			f := l.f
			l.mu.Unlock()
			err := f.Sync()
			l.mu.Lock()
			if err != nil {
				if l.syncErr == nil {
					l.syncErr = err
				}
			} else if target > l.synced {
				l.synced = target
			}
			l.finishSyncLocked()
			continue // re-check: our lsn is covered, or a new leader is needed
		}
		ch := l.syncDone
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
	}
}

// finishSyncLocked ends a leader's fsync and wakes every waiter.
func (l *Log) finishSyncLocked() {
	l.syncing = false
	close(l.syncDone)
	l.syncDone = make(chan struct{})
}

// LSN returns the last appended LSN (0 for an empty log).
func (l *Log) LSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Replay calls fn for every record with LSN > from, in order. The record
// slice is only valid during the callback. Pending buffered appends are
// flushed first so the scan observes them; fn must not call back into the
// log.
func (l *Log) Replay(from uint64, fn func(lsn uint64, rec []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		l.syncErr = err
		return err
	}
	for i, seg := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].first <= from+1 {
			continue // every record in this segment is <= from
		}
		if err := replaySegment(seg, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(seg segment, from uint64, fn func(lsn uint64, rec []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return nil
	}
	lsn := seg.first - 1
	var hdr [recHdrSize]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // end of the validated region
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > MaxRecord {
			return nil
		}
		if cap(buf) < int(plen) {
			buf = make([]byte, plen)
		}
		buf = buf[:plen]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil
		}
		if crc32.Checksum(buf, crcTable) != want {
			return nil
		}
		lsn++
		if lsn <= from {
			continue
		}
		if err := fn(lsn, buf); err != nil {
			return err
		}
	}
}

// DropBefore removes whole segments every record of which has LSN <= lsn
// (typically the LSN a snapshot covers). The active segment is never
// removed. Returns the number of segment files deleted.
func (l *Log) DropBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segs) > 1 && l.segs[1].first-1 <= lsn {
		if err := os.Remove(l.segs[0].path); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	return removed, nil
}

// Reset discards the whole log and restarts it so the next Append gets
// LSN beyond+1. Used by recovery when a snapshot proves everything up to
// `beyond` durable but the surviving log ends earlier (a torn tail ate
// records the snapshot already covered): without the reset, new records
// would reuse LSNs a future replay-from-snapshot skips.
func (l *Log) Reset(beyond uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.lsn >= beyond {
		return nil
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, seg := range l.segs {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.segs = nil
	l.lsn = beyond
	l.synced = beyond
	return l.createSegmentLocked(beyond + 1)
}

// Close flushes, fsyncs, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		ch := l.syncDone
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
	}
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Crash closes the log abruptly: buffered unflushed records are dropped on
// the floor, nothing is fsynced. It simulates a power cut — only what an
// earlier Commit made durable survives. Tests and the cluster's
// whole-cluster kill scenario use it; production shutdown uses Close.
func (l *Log) Crash() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
