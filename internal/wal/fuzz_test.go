package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes in as the first segment file and
// requires recovery to be total: Open never panics or errors on content
// corruption, Replay yields only records that are an intact prefix of the
// file, and the log stays appendable afterward — the new record survives a
// reopen, and the recovered prefix is byte-identical across reopens (no
// resurrection of data past the corruption point).
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: empty file, bare magic, one valid record, a valid
	// record with a torn tail, a bit-flipped CRC, and pure garbage.
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	valid := func(payloads ...[]byte) []byte {
		buf := []byte(segMagic)
		for _, p := range payloads {
			var hdr [recHdrSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, crcTable))
			buf = append(buf, hdr[:]...)
			buf = append(buf, p...)
		}
		return buf
	}
	f.Add(valid([]byte("hello")))
	f.Add(append(valid([]byte("hello")), 0xff, 0x00, 0x00, 0x00))
	flipped := valid([]byte("hello"), []byte("world"))
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0xa5}, 64))

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			// Only I/O failures may error; content corruption must not.
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		var recovered [][]byte
		if err := l.Replay(0, func(lsn uint64, rec []byte) error {
			recovered = append(recovered, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if uint64(len(recovered)) != l.LSN() {
			t.Fatalf("replayed %d records but LSN = %d", len(recovered), l.LSN())
		}
		lsn, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if lsn != uint64(len(recovered))+1 {
			t.Fatalf("post-recovery lsn = %d, want %d", lsn, len(recovered)+1)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Reopen: the prefix must be identical and the new record present.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		var again [][]byte
		if err := l2.Replay(0, func(lsn uint64, rec []byte) error {
			again = append(again, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			t.Fatalf("Replay after reopen: %v", err)
		}
		if len(again) != len(recovered)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(again), len(recovered)+1)
		}
		for i := range recovered {
			if !bytes.Equal(again[i], recovered[i]) {
				t.Fatalf("record %d changed across reopen: %q vs %q", i, recovered[i], again[i])
			}
		}
		if !bytes.Equal(again[len(again)-1], []byte("post-recovery")) {
			t.Fatalf("post-recovery record missing, tail = %q", again[len(again)-1])
		}
		// Stray temp or derived files must not accumulate.
		if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
			t.Fatalf("stray temp files: %v", tmps)
		}
	})
}
