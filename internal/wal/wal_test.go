package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, l *Log, from uint64) [][]byte {
	t.Helper()
	var recs [][]byte
	if err := l.Replay(from, func(lsn uint64, rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	var last uint64
	for i, rec := range want {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		last = lsn
	}
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Replay from an offset skips the prefix.
	if tail := collect(t, l, 2); len(tail) != 1 || !bytes.Equal(tail[0], []byte("three")) {
		t.Fatalf("replay from 2 = %q", tail)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LSN() != 5 {
		t.Fatalf("recovered LSN = %d, want 5", l2.LSN())
	}
	lsn, err := l2.Append([]byte("rec-5"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-recovery lsn = %d, want 6", lsn)
	}
	if err := l2.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2, 0); len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
}

func TestCrashDropsUncommitted(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("buffered-only")); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("durable")) {
		t.Fatalf("recovered %q, want only the committed record", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, 1)
	// Simulate a torn write: a header promising bytes that never arrived.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LSN() != 3 {
		t.Fatalf("recovered LSN = %d, want 3", l2.LSN())
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(got))
	}
}

func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the second record's payload.
	recLen := recHdrSize + len("payload-0")
	off := len(segMagic) + recLen + recHdrSize + 2
	data[off] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("payload-0")) {
		t.Fatalf("recovered %q, want only the record before the bit flip", got)
	}
	if l2.LSN() != 1 {
		t.Fatalf("recovered LSN = %d, want 1", l2.LSN())
	}
}

func TestSegmentRollAndDropBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("x"), 100)
	var last uint64
	for i := 0; i < 12; i++ {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected >= 3 segments after rolling, got %d", len(segs))
	}
	removed, err := l.DropBefore(last)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(segs)-1 {
		t.Fatalf("DropBefore removed %d segments, want %d", removed, len(segs)-1)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(after) != 1 {
		t.Fatalf("%d segment files remain, want 1 (active)", len(after))
	}
	// Records in the surviving active segment still replay.
	lsn, err := l.Append([]byte("tail"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LSN() != lsn {
		t.Fatalf("recovered LSN = %d, want %d", l2.LSN(), lsn)
	}
	got := collect(t, l2, last)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("tail")) {
		t.Fatalf("replay after compaction = %q", got)
	}
}

func TestResetAdvancesLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(100); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append([]byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 101 {
		t.Fatalf("post-reset lsn = %d, want 101", lsn)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LSN() != 101 {
		t.Fatalf("recovered LSN = %d, want 101", l2.LSN())
	}
	got := collect(t, l2, 100)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("new")) {
		t.Fatalf("replay after reset = %q", got)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append([]byte(fmt.Sprintf("concurrent-%d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = l.Commit(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	// Every committed record survives the crash.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := LoadSnapshot(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want no snapshot and no error", ok, err)
	}
	if err := SaveSnapshot(dir, 7, []byte("image-a")); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(dir, 42, []byte("image-b")); err != nil {
		t.Fatal(err)
	}
	lsn, payload, ok, err := LoadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if lsn != 42 || !bytes.Equal(payload, []byte("image-b")) {
		t.Fatalf("loaded lsn=%d payload=%q, want 42/image-b", lsn, payload)
	}
	// Older snapshot was cleaned up.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("%d snapshot files on disk, want 1", len(snaps))
	}
}

func TestSnapshotCorruptIsError(t *testing.T) {
	dir := t.TempDir()
	if err := SaveSnapshot(dir, 9, []byte("image")); err != nil {
		t.Fatal(err)
	}
	path := snapPath(dir, 9)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadSnapshot(dir); err == nil {
		t.Fatal("corrupt-only snapshot dir must load with an error, got nil")
	}
}

func TestGarbageSegmentNamesRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-zzzz.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LSN() != 0 {
		t.Fatalf("LSN = %d, want 0", l.LSN())
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-zzzz.seg")); !os.IsNotExist(err) {
		t.Fatalf("garbage segment file survived recovery: %v", err)
	}
}
