// Package metrics implements the workload-monitoring substrate of
// ElasticRMI: per-method invocation statistics (the paper's
// getMethodCallStats) and resource-utilization estimates (getAvgCPUUsage /
// getAvgRAMUsage) derived from measured busy time, averaged over the burst
// interval.
//
// In the paper these numbers come from the JVM and the operating system of
// each Mesos slice. Here each pool member owns a Meter; the skeleton feeds
// it the service time of every remote method execution, and CPU utilization
// over a window is busy-time / (window x capacity). RAM utilization is an
// application-supplied gauge (e.g. fraction of a cache's capacity in use),
// mirroring how a real deployment reads RSS against the slice reservation.
package metrics

import (
	"sort"
	"sync"
	"time"

	"elasticrmi/internal/simclock"
)

// MethodStat aggregates invocations of one remote method over a window.
type MethodStat struct {
	Method string
	// Calls is the number of invocations observed in the window.
	Calls int64
	// RatePerSec is Calls divided by the window length.
	RatePerSec float64
	// AvgLatency is the mean service time of the invocations.
	AvgLatency time.Duration
}

// Usage is a point-in-time resource utilization estimate in percent [0,100],
// plus the window's overload counters: invocations the member's admission
// controller refused. Utilization says how busy the member is; Shed and
// Expired say work was turned away — the earlier, sharper scale-out signal
// (a member can shed at 91% CPU and at 100% alike, but only shedding proves
// demand exceeded capacity).
type Usage struct {
	CPU float64
	RAM float64
	// Shed counts invocations refused with an overload reply (admission gate
	// and queue both full) during the window.
	Shed int64
	// Expired counts invocations dropped because their deadline budget ran
	// out waiting in the admission queue during the window.
	Expired int64
}

// Meter collects per-method statistics and busy time. The zero value is not
// usable; construct with NewMeter.
type Meter struct {
	clock simclock.Clock
	// capacity is the node's notional service capacity: the number of
	// invocations the member can execute concurrently at 100% CPU (the CPU
	// reservation of the Mesos slice, in "cores").
	capacity float64

	mu          sync.Mutex
	windowStart time.Time
	busy        time.Duration
	inFlight    int
	shed        int64
	expired     int64
	perMethod   map[string]*methodAgg
	ramGauge    func() float64
}

type methodAgg struct {
	calls     int64
	totalBusy time.Duration
}

// NewMeter creates a Meter. capacityCores is the slice's CPU reservation in
// cores (>= 1); clock may be nil for the wall clock.
func NewMeter(capacityCores float64, clock simclock.Clock) *Meter {
	if clock == nil {
		clock = simclock.Real{}
	}
	if capacityCores <= 0 {
		capacityCores = 1
	}
	return &Meter{
		clock:       clock,
		capacity:    capacityCores,
		windowStart: clock.Now(),
		perMethod:   make(map[string]*methodAgg),
	}
}

// SetRAMGauge installs a function returning current memory utilization in
// percent. If unset, RAM reads as 0.
func (m *Meter) SetRAMGauge(g func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ramGauge = g
}

// Begin marks the start of one invocation; the returned func must be called
// when the invocation finishes and records its service time.
func (m *Meter) Begin(method string) func() {
	start := m.clock.Now()
	m.mu.Lock()
	m.inFlight++
	m.mu.Unlock()
	return func() {
		elapsed := m.clock.Since(start)
		m.mu.Lock()
		m.inFlight--
		m.busy += elapsed
		agg, ok := m.perMethod[method]
		if !ok {
			agg = &methodAgg{}
			m.perMethod[method] = agg
		}
		agg.calls++
		agg.totalBusy += elapsed
		m.mu.Unlock()
	}
}

// Observe records a completed invocation with a known service time. It is
// the non-callback form of Begin, used by simulated members.
func (m *Meter) Observe(method string, serviceTime time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.busy += serviceTime
	agg, ok := m.perMethod[method]
	if !ok {
		agg = &methodAgg{}
		m.perMethod[method] = agg
	}
	agg.calls++
	agg.totalBusy += serviceTime
}

// AddShed records n invocations the member's admission controller refused
// with an overload reply during the current window.
func (m *Meter) AddShed(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.shed += n
	m.mu.Unlock()
}

// AddExpired records n invocations whose deadline budget expired in the
// admission queue during the current window (handlers never ran).
func (m *Meter) AddExpired(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.expired += n
	m.mu.Unlock()
}

// InFlight returns the number of invocations currently executing.
func (m *Meter) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inFlight
}

// Window reports statistics accumulated since the last call to Window (or
// since construction) and starts a new window. It returns the per-method
// stats sorted by method name and the resource usage over the window.
//
// The RAM gauge runs OUTSIDE the meter's lock: gauges may consult the pool
// or the shared store (the cache occupancy gauge does both), and holding
// the meter lock across such calls inverts lock order against code that
// samples the meter while holding pool state.
func (m *Meter) Window() ([]MethodStat, Usage) {
	m.mu.Lock()
	now := m.clock.Now()
	elapsed := now.Sub(m.windowStart)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	stats := make([]MethodStat, 0, len(m.perMethod))
	for name, agg := range m.perMethod {
		st := MethodStat{Method: name, Calls: agg.calls}
		st.RatePerSec = float64(agg.calls) / elapsed.Seconds()
		if agg.calls > 0 {
			st.AvgLatency = agg.totalBusy / time.Duration(agg.calls)
		}
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Method < stats[j].Method })

	cpu := 100 * m.busy.Seconds() / (elapsed.Seconds() * m.capacity)
	if cpu > 100 {
		cpu = 100
	}
	if cpu < 0 {
		cpu = 0
	}
	gauge := m.ramGauge
	shed, expired := m.shed, m.expired
	m.busy = 0
	m.shed, m.expired = 0, 0
	m.perMethod = make(map[string]*methodAgg)
	m.windowStart = now
	m.mu.Unlock()

	var ram float64
	if gauge != nil {
		ram = gauge()
		if ram < 0 {
			ram = 0
		}
		if ram > 100 {
			ram = 100
		}
	}
	return stats, Usage{CPU: cpu, RAM: ram, Shed: shed, Expired: expired}
}

// Peek returns the usage of the current, unfinished window without resetting
// it. Useful for load-balancing decisions between burst intervals. Like
// Window, the RAM gauge runs outside the meter's lock.
func (m *Meter) Peek() Usage {
	m.mu.Lock()
	elapsed := m.clock.Now().Sub(m.windowStart)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	cpu := 100 * m.busy.Seconds() / (elapsed.Seconds() * m.capacity)
	if cpu > 100 {
		cpu = 100
	}
	gauge := m.ramGauge
	shed, expired := m.shed, m.expired
	m.mu.Unlock()
	var ram float64
	if gauge != nil {
		ram = gauge()
	}
	return Usage{CPU: cpu, RAM: ram, Shed: shed, Expired: expired}
}

// StatsMap converts a slice of MethodStat into the map keyed by method name
// that the paper's getMethodCallStats returns.
func StatsMap(stats []MethodStat) map[string]MethodStat {
	out := make(map[string]MethodStat, len(stats))
	for _, s := range stats {
		out[s.Method] = s
	}
	return out
}
