package metrics

import (
	"testing"
	"time"

	"elasticrmi/internal/simclock"
)

func TestWindowPerMethodStats(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m := NewMeter(1, clock)
	for i := 0; i < 10; i++ {
		m.Observe("get", 10*time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		m.Observe("put", 40*time.Millisecond)
	}
	clock.Advance(10 * time.Second)

	stats, usage := m.Window()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	byName := StatsMap(stats)
	get := byName["get"]
	if get.Calls != 10 || get.AvgLatency != 10*time.Millisecond {
		t.Fatalf("get = %+v", get)
	}
	if got, want := get.RatePerSec, 1.0; got != want {
		t.Fatalf("get rate = %v, want %v", got, want)
	}
	put := byName["put"]
	if put.Calls != 5 || put.AvgLatency != 40*time.Millisecond {
		t.Fatalf("put = %+v", put)
	}
	// Busy time: 10x10ms + 5x40ms = 300ms over 10s at 1 core = 3%.
	if usage.CPU < 2.9 || usage.CPU > 3.1 {
		t.Fatalf("cpu = %v, want ~3", usage.CPU)
	}
}

func TestWindowResets(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m := NewMeter(1, clock)
	m.Observe("x", time.Second)
	clock.Advance(time.Second)
	m.Window()
	clock.Advance(time.Second)
	stats, usage := m.Window()
	if len(stats) != 0 || usage.CPU != 0 {
		t.Fatalf("window did not reset: %v %v", stats, usage)
	}
}

func TestCPUCappedAt100(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m := NewMeter(1, clock)
	m.Observe("x", 10*time.Second) // more busy than elapsed
	clock.Advance(time.Second)
	_, usage := m.Window()
	if usage.CPU != 100 {
		t.Fatalf("cpu = %v, want capped at 100", usage.CPU)
	}
}

func TestCapacityScalesCPU(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m := NewMeter(2, clock) // 2-core slice
	m.Observe("x", time.Second)
	clock.Advance(time.Second)
	_, usage := m.Window()
	if usage.CPU != 50 {
		t.Fatalf("cpu = %v, want 50 (1s busy / 1s x 2 cores)", usage.CPU)
	}
}

func TestBeginTracksInFlightAndBusy(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m := NewMeter(1, clock)
	finish := m.Begin("op")
	if m.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", m.InFlight())
	}
	clock.Advance(100 * time.Millisecond)
	finish()
	if m.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0", m.InFlight())
	}
	clock.Advance(900 * time.Millisecond)
	stats, usage := m.Window()
	if stats[0].AvgLatency != 100*time.Millisecond {
		t.Fatalf("latency = %v", stats[0].AvgLatency)
	}
	if usage.CPU < 9.9 || usage.CPU > 10.1 {
		t.Fatalf("cpu = %v, want ~10", usage.CPU)
	}
}

func TestRAMGaugeClamped(t *testing.T) {
	m := NewMeter(1, simclock.NewSim(time.Unix(0, 0)))
	m.SetRAMGauge(func() float64 { return 150 })
	_, usage := m.Window()
	if usage.RAM != 100 {
		t.Fatalf("ram = %v, want clamped 100", usage.RAM)
	}
	m.SetRAMGauge(func() float64 { return -5 })
	_, usage = m.Window()
	if usage.RAM != 0 {
		t.Fatalf("ram = %v, want clamped 0", usage.RAM)
	}
}

func TestPeekDoesNotReset(t *testing.T) {
	clock := simclock.NewSim(time.Unix(0, 0))
	m := NewMeter(1, clock)
	m.Observe("x", 500*time.Millisecond)
	clock.Advance(time.Second)
	u1 := m.Peek()
	u2 := m.Peek()
	if u1.CPU != u2.CPU || u1.CPU < 49 || u1.CPU > 51 {
		t.Fatalf("peek = %v then %v, want stable ~50", u1.CPU, u2.CPU)
	}
	stats, _ := m.Window()
	if len(stats) != 1 {
		t.Fatal("peek consumed the window")
	}
}
